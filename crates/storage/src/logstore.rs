//! An append-only, log-structured storage backend.
//!
//! Where [`crate::store::MvStore`] keeps each row's versions in a chain
//! owned by that row, `LogStore` writes every versioned record into
//! **log segments** in arrival order and finds them again through a
//! **per-table hash index** mapping `row id → record positions` (oldest
//! first).  A row's "version chain" is therefore a *view* computed from
//! index pointers — the same visibility rules as the chain store, read
//! off a different representation, which is exactly the point: the
//! Table 3/4 isolation verdicts must not care.
//!
//! Mechanics:
//!
//! * **sharding** — the log is hash-partitioned into
//!   [`LogStoreConfig::shards`] shards, each with its own segments, hash
//!   index, spill file, and write-ahead file chain.  A record's shard is
//!   `fnv1a(table, row) % shards`, so every version of one row lives in
//!   one shard and per-row version order is shard-local.  Control frames
//!   (`Begin`/`Commit`/`Abort`/`CreateTable`/`CreateIndex`) always go to
//!   shard 0, which makes shard 0's chain the single serialization point
//!   for commit order;
//! * **append path** — `insert`/`update`/`delete` append one record
//!   (table, row id, writer, payload-or-tombstone) to the owning shard's
//!   open segment; a segment that reaches
//!   [`LogStoreConfig::segment_records`] is sealed and a fresh one
//!   opened.  Data records are never rewritten in place;
//! * **commit/abort** — commit resolves the writer's pending records to a
//!   commit timestamp; abort unlinks the writer's records from the index,
//!   leaving dead space in the owning shards;
//! * **compaction** — when a shard's dead (aborted) records cross
//!   [`LogStoreConfig::compact_watermark`], that shard's segments are
//!   rewritten without them and the index repointed, synchronously on the
//!   aborting caller's thread.  Committed versions are *never* dropped;
//! * **spill** (optional) — with [`LogStoreConfig::spill`] on, sealing a
//!   segment writes its row payloads to the shard's unlinked temp file
//!   and keeps only (offset, length) in memory; reads decode on demand;
//! * **durability** (optional) — [`LogStore::open_durable`] roots the log
//!   in a directory of per-shard write-ahead chains
//!   (`wal-<shard>-<generation>-<sequence>.seg`) under one `MANIFEST`
//!   that names every shard's live generation atomically.  A commit
//!   fsyncs the writer's dirty data shards first, then appends its
//!   `Commit` frame to shard 0 and fsyncs that — so a durable `Commit`
//!   frame always covers durable data frames, in every shard.
//!   [`LogStore::recover`] replays shard chains in two passes (writes
//!   first, then the deferred `Commit`/`Abort` stream in shard-0 order),
//!   aborts writers whose commit record never made it, truncates each
//!   shard's torn final frame, and merges the shards back into one store;
//! * **group commit** (optional) — with [`GroupCommit::On`], commit only
//!   appends in memory and enqueues the commit record; the follow-up
//!   [`StorageBackend::flush_commit`] parks the committer until a leader
//!   (the first committer in, after holding the window open) emits the
//!   whole batch's `Commit` frames to shard 0 and issues **one** fsync
//!   for all of them.  Commit-frame order is the enqueue order, which the
//!   engine serialises under its commit-sequence lock, so recovery's
//!   replay order matches the history recorder's commit order.  A crash
//!   mid-batch loses exactly the unflushed tail: un-fsynced commit
//!   frames truncate away like any torn suffix.  A compaction rewrite
//!   racing the batch never persists a queued commit's state (see
//!   `LogStore::rewrite_shard`) — the batch's own fsync stays the one
//!   durability point.
//!
//! Concurrency and lock order: `registry → txns → shards (ascending) →
//! {durable, group, last_commit}`.  The registry (table metadata) and
//! transaction table are global; everything per-record is shard-local.

use crate::backend::{sort_scan_output, GroupCommit, ScanView, StorageBackend};
use crate::predicate::{KeyInterval, RowPredicate};
use crate::row::{Row, RowId};
use crate::snapshot::Snapshot;
use crate::store::{StorageError, TableName, WriteKind};
use crate::timestamp::{Timestamp, TxnToken};
use crate::value::ColumnValue;
use parking_lot::{Condvar, Mutex, RwLock};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Tuning knobs of the log-structured backend.
#[derive(Clone, Copy, Debug)]
pub struct LogStoreConfig {
    /// Records per segment; a full segment is sealed (and spilled, if
    /// spilling is on) and a new one opened.  Clamped to at least 1.
    pub segment_records: usize,
    /// Dead (aborted) records tolerated in one shard before that shard is
    /// compacted.  Clamped to at least 1 — every abort checks the
    /// watermark, so compaction is always caller-driven, never a
    /// background task.
    pub compact_watermark: usize,
    /// Spill sealed segments' row payloads to an unlinked temporary file
    /// instead of keeping them on the heap.
    pub spill: bool,
    /// Hash-partition count for the log + index (and the write-ahead
    /// chains of a durable store).  Clamped to at least 1.
    pub shards: usize,
    /// How `Durability::Fsync` commits reach disk: one fsync per commit,
    /// or batched behind a group-commit leader.
    pub group_commit: GroupCommit,
}

impl Default for LogStoreConfig {
    fn default() -> Self {
        LogStoreConfig {
            segment_records: 1024,
            compact_watermark: 4096,
            spill: false,
            shards: 1,
            group_commit: GroupCommit::Off,
        }
    }
}

/// Position of a record within its shard: (segment index, offset).
type RecordPtr = (usize, usize);

/// Where a record's row contents live.
enum Payload {
    /// On the heap; `None` is a tombstone (tombstones never spill).
    Inline(Option<Row>),
    /// Encoded in the shard's spill file at `offset..offset + len`.
    Spilled { offset: u64, len: u32 },
}

/// One versioned record in the log.
struct LogRecord {
    table: Arc<str>,
    row: RowId,
    writer: TxnToken,
    /// What the write was (insert/update/delete) — mirrored into the
    /// write set at append time and needed again by the durable rewrite,
    /// which re-emits each surviving record as a self-contained frame.
    kind: WriteKind,
    /// Set when the writer commits; `None` while pending.
    commit_ts: Option<Timestamp>,
    /// Unlinked from the index by abort; reclaimed by compaction.
    aborted: bool,
    /// The record's integer value in the table's indexed column, stamped
    /// at append time (or backfilled by `create_index`) so abort can
    /// unhook the ordered index without decoding spilled payloads.
    index_key: Option<i64>,
    payload: Payload,
}

/// A run of records; full segments are sealed and never appended to again.
#[derive(Default)]
struct Segment {
    records: Vec<LogRecord>,
    sealed: bool,
}

/// Global per-table metadata: interned name, the row-id allocator, and
/// the ordered index's column.  The per-row hash index lives in the
/// shards ([`ShardTable`]).
struct TableMeta {
    name: Arc<str>,
    next_row_id: u64,
    /// The ordered secondary index's column, once registered.
    indexed_column: Option<String>,
}

/// One shard's slice of a table's index.
#[derive(Default)]
struct ShardTable {
    /// Row id → positions of its live (non-aborted) records, oldest first.
    /// An entry outlives its records: a row whose only version was aborted
    /// keeps an empty slot, exactly like an empty version chain.
    rows: HashMap<RowId, Vec<RecordPtr>>,
    /// Ordered index slice: `(key, row id) → refcount` over every live
    /// record in this shard that carries that key — committed and
    /// uncommitted alike, so it can only over-approximate any one
    /// visibility rule.  `scan_range` re-checks the picked version.
    ordered: BTreeMap<(i64, RowId), usize>,
}

/// The spill file: append-only, unlinked at creation so the OS reclaims it
/// when the store is dropped (or the process dies).
struct SpillFile {
    file: File,
    len: u64,
    /// Serialises seek-then-IO pairs on platforms without positioned IO:
    /// concurrent readers under the shard's read lock share one cursor.
    #[cfg(not(unix))]
    cursor: std::sync::Mutex<()>,
}

impl SpillFile {
    fn new(file: File) -> Self {
        SpillFile {
            file,
            len: 0,
            #[cfg(not(unix))]
            cursor: std::sync::Mutex::new(()),
        }
    }

    /// Write `bytes` at `offset` (positioned IO on unix, seek+write under
    /// the cursor mutex elsewhere).
    #[cfg(unix)]
    fn write_at(&self, bytes: &[u8], offset: u64) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(bytes, offset)
    }

    #[cfg(not(unix))]
    fn write_at(&self, bytes: &[u8], offset: u64) -> io::Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        let _cursor = self.cursor.lock().expect("spill cursor mutex poisoned");
        let mut file = &self.file;
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(bytes)
    }

    /// Read `len` bytes at `offset` (positioned IO on unix, seek+read
    /// under the cursor mutex elsewhere).
    #[cfg(unix)]
    fn read_at(&self, offset: u64, len: u32) -> io::Result<Vec<u8>> {
        use std::os::unix::fs::FileExt;
        let mut buf = vec![0u8; len as usize];
        self.file.read_exact_at(&mut buf, offset)?;
        Ok(buf)
    }

    #[cfg(not(unix))]
    fn read_at(&self, offset: u64, len: u32) -> io::Result<Vec<u8>> {
        use std::io::{Read, Seek, SeekFrom};
        let _cursor = self.cursor.lock().expect("spill cursor mutex poisoned");
        let mut buf = vec![0u8; len as usize];
        let mut file = &self.file;
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(&mut buf)?;
        Ok(buf)
    }
}

/// One shard's write-ahead chain: the open segment file of
/// `wal-<shard>-<gen>-<seq>.seg`, with absolute written/synced byte
/// counters so crash-simulation harnesses can ask exactly how much of the
/// open file is durable ([`LogStore::durable_file_tails`]).
struct ShardWal {
    dir: PathBuf,
    shard: usize,
    /// This shard's live generation; per-shard rewrite-on-compact bumps
    /// it (and the shared manifest) and deletes the previous generation.
    gen: u64,
    /// Sequence number of the open segment file within the generation.
    file_seq: u64,
    /// The open segment file, positioned at its end.
    file: File,
    /// Bytes written to the open file so far.
    written: u64,
    /// Bytes of the open file covered by an fsync.
    synced: u64,
}

/// One hash partition of the log: segments, index slices, spill file, and
/// (for durable stores) the shard's write-ahead chain.
#[derive(Default)]
struct LogShard {
    tables: HashMap<Arc<str>, ShardTable>,
    segments: Vec<Segment>,
    /// Aborted records awaiting compaction (per-shard watermark).
    dead: usize,
    /// Live (non-aborted) records in this shard.
    live: usize,
    spill: Option<SpillFile>,
    /// Spill-file failures observed (counted immediately before each one
    /// is surfaced as a panic, so the invariant breach stays countable
    /// from a `catch_unwind` test).
    spill_failures: u64,
    /// Test hook: make the next spill write fail.
    fail_next_spill_write: bool,
    /// This shard's write-ahead chain, when the store is durable.  `None`
    /// both for plain in-memory stores and *during recovery replay*,
    /// which is how replay reuses the ordinary mutation paths without
    /// re-emitting the frames it is reading.
    wal: Option<ShardWal>,
}

/// Global in-flight transaction state, shared across shards.
#[derive(Default)]
struct TxnTable {
    /// In-flight write sets, in write order (the input to commit, abort,
    /// and First-Committer-Wins).
    write_sets: BTreeMap<TxnToken, Vec<(Arc<str>, RowId, WriteKind)>>,
    /// Positions of each in-flight writer's uncommitted records, as
    /// (shard, pointer-within-shard) in append order.
    pending: HashMap<TxnToken, Vec<(usize, RecordPtr)>>,
}

/// Durable state shared by every shard: the directory, each shard's live
/// generation (mirrored in `MANIFEST`), and directory ownership.
struct DurableShared {
    dir: PathBuf,
    /// Per-shard live generations, indexed by shard.
    gens: Vec<u64>,
    /// Remove the whole directory when the store is dropped (set for
    /// engine-owned throwaway stores from [`LogStore::open_durable_temp`]).
    owns_dir: bool,
}

/// Group-commit coordination: the queue of commit records awaiting the
/// batched fsync, and who is currently flushing it.
#[derive(Default)]
struct GroupState {
    /// Commit records enqueued but not yet durably flushed, in commit
    /// order (the engine enqueues under its commit-sequence lock).
    queue: Vec<(TxnToken, Timestamp)>,
    /// Writers with an entry in `queue` or in the batch being flushed.
    queued: HashSet<TxnToken>,
    /// A leader is currently holding the window open / flushing.
    leader: bool,
    /// Test hook: batches are held open ([`LogStore::suspend_commit_flushes`])
    /// until [`LogStore::flush_held_commits`] releases them.
    hold: bool,
}

/// A control frame deferred by recovery's first pass: commits and aborts
/// replay only after every shard's `Write` frames are back, in the order
/// shard 0's chain recorded them.
enum DeferredControl {
    Commit(TxnToken, Timestamp),
    Abort(TxnToken),
}

/// The append-only log-structured store.  See the module docs for the
/// design; see [`StorageBackend`] for the semantics every method must
/// share with the chain store.
pub struct LogStore {
    config: LogStoreConfig,
    /// Table name → global metadata, sorted so `tables()` is deterministic.
    registry: RwLock<BTreeMap<Arc<str>, TableMeta>>,
    txns: Mutex<TxnTable>,
    shards: Vec<RwLock<LogShard>>,
    durable: Mutex<Option<DurableShared>>,
    /// Mirror of `durable.is_some()`, readable without the mutex (the
    /// append path checks it on every mutation).
    durable_on: AtomicBool,
    /// fsyncs issued so far (commit boundaries, seals, manifest swaps) —
    /// always-on, so the group-commit proof (`fsync_count` < committed
    /// transactions under a concurrent storm) is assertable.
    fsyncs: AtomicU64,
    /// Largest commit timestamp ever stamped (live or replayed); recovery
    /// harnesses advance the engine clock past it.
    last_commit: Mutex<Option<Timestamp>>,
    group: Mutex<GroupState>,
    group_cv: Condvar,
}

impl Default for LogStore {
    fn default() -> Self {
        Self::with_config(LogStoreConfig::default())
    }
}

impl LogStore {
    /// An empty log store with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty log store with explicit tuning knobs.
    pub fn with_config(config: LogStoreConfig) -> Self {
        let config = LogStoreConfig {
            segment_records: config.segment_records.max(1),
            compact_watermark: config.compact_watermark.max(1),
            spill: config.spill,
            shards: config.shards.max(1),
            group_commit: config.group_commit,
        };
        LogStore {
            shards: (0..config.shards)
                .map(|_| RwLock::new(LogShard::default()))
                .collect(),
            config,
            registry: RwLock::new(BTreeMap::new()),
            txns: Mutex::new(TxnTable::default()),
            durable: Mutex::new(None),
            durable_on: AtomicBool::new(false),
            fsyncs: AtomicU64::new(0),
            last_commit: Mutex::new(None),
            group: Mutex::new(GroupState::default()),
            group_cv: Condvar::new(),
        }
    }

    /// The configuration this store runs with.
    pub fn config(&self) -> LogStoreConfig {
        self.config
    }

    /// Number of segments currently in the log, summed over shards.
    pub fn segment_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().segments.len()).sum()
    }

    /// Dead (aborted, not yet compacted) records currently in the log.
    pub fn dead_record_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().dead).sum()
    }

    /// Bytes written to the spill files so far (0 when spilling is off).
    pub fn spilled_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.read().spill.as_ref().map_or(0, |f| f.len))
            .sum()
    }

    /// Spill-file failures observed.  Each failure also panics (the
    /// payload would be silently unreadable otherwise), so this counter
    /// is read from `catch_unwind` in tests and post-mortem tooling.
    pub fn spill_failure_count(&self) -> u64 {
        self.shards.iter().map(|s| s.read().spill_failures).sum()
    }

    /// Test hook: inject an IO error into the next spill write of every
    /// shard.
    #[doc(hidden)]
    pub fn fail_next_spill_write(&self) {
        for shard in &self.shards {
            shard.write().fail_next_spill_write = true;
        }
    }

    /// Largest commit timestamp ever stamped on a writing transaction
    /// (live or replayed).  Recovery harnesses advance the engine's
    /// timestamp oracle past this before resuming a workload.
    pub fn last_commit_ts(&self) -> Option<Timestamp> {
        *self.last_commit.lock()
    }

    /// fsyncs issued so far: commit boundaries, segment seals, and
    /// manifest swaps (0 for non-durable stores).  Always-on — the
    /// group-commit proof asserts this against the commit count.
    pub fn fsync_count(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// The write-ahead directory, when this store is durable.
    pub fn durable_dir(&self) -> Option<PathBuf> {
        self.durable.lock().as_ref().map(|d| d.dir.clone())
    }

    /// Largest live write-ahead generation across shards, when this
    /// store is durable (each shard's rewrite-on-compact bumps its own).
    pub fn durable_generation(&self) -> Option<u64> {
        self.durable
            .lock()
            .as_ref()
            .map(|d| d.gens.iter().copied().max().unwrap_or(0))
    }

    /// Every shard's live write-ahead generation, when durable.
    pub fn durable_generations(&self) -> Option<Vec<u64>> {
        self.durable.lock().as_ref().map(|d| d.gens.clone())
    }

    /// Crash-simulation hook: hold every group-commit batch open — a
    /// following [`StorageBackend::flush_commit`] returns immediately
    /// with the commit record still queued (acknowledged in process, not
    /// durable).  [`LogStore::flush_held_commits`] releases the batch.
    #[doc(hidden)]
    pub fn suspend_commit_flushes(&self) {
        self.group.lock().hold = true;
    }

    /// Crash-simulation hook: flush every held commit record (the batch
    /// fsync a suspended leader would have issued) and resume normal
    /// group flushing.
    #[doc(hidden)]
    pub fn flush_held_commits(&self) {
        let batch = {
            let mut group = self.group.lock();
            group.hold = false;
            std::mem::take(&mut group.queue)
        };
        // `flush_batch` retires the batch from `queued` itself (under
        // the control shard's lock — see its docs).
        self.flush_batch(&batch);
        self.group_cv.notify_all();
    }

    /// Crash-simulation hook: each shard's open write-ahead file and how
    /// many of its bytes are covered by an fsync.  A harness emulating
    /// power loss truncates each file to that length — everything beyond
    /// it was written but never synced, exactly what a crash loses.
    /// Sealed (rotated-away) files are always fully synced.
    #[doc(hidden)]
    pub fn durable_file_tails(&self) -> Vec<(PathBuf, u64)> {
        self.shards
            .iter()
            .filter_map(|s| {
                let shard = s.read();
                let wal = shard.wal.as_ref()?;
                Some((
                    wal.dir
                        .join(wal_file_name(wal.shard, wal.gen, wal.file_seq)),
                    wal.synced,
                ))
            })
            .collect()
    }

    /// The shard owning `(table, row)` — FNV-1a over the table bytes then
    /// the row id, so the routing is deterministic across processes (a
    /// recovery replays records into the same shards that wrote them).
    fn shard_of(&self, table: &str, row: RowId) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        let mut hash: u64 = 0xcbf29ce484222325;
        for &byte in table.as_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        for &byte in &row.0.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        (hash % self.shards.len() as u64) as usize
    }

    // ------------------------------------------------------------------
    // Append path.
    // ------------------------------------------------------------------

    // One argument per field of the record being appended — splitting it
    // into a struct would just rename the call sites.
    #[allow(clippy::too_many_arguments)]
    fn append(
        &self,
        registry: &BTreeMap<Arc<str>, TableMeta>,
        txns: &mut TxnTable,
        table: Arc<str>,
        row: RowId,
        writer: TxnToken,
        payload: Option<Row>,
        kind: WriteKind,
    ) {
        let sid = self.shard_of(&table, row);
        let durable = self.durable_on.load(Ordering::Acquire);
        // The durable frame is built before the payload moves into the
        // record (and before the seal decision, so replay reproduces the
        // same file-vs-segment alignment).
        let write_frame = durable.then(|| {
            let encoded = payload.as_ref().map(encode_row);
            encode_write_frame(&table, row, writer, kind, None, encoded.as_deref())
        });
        if durable && !txns.write_sets.contains_key(&writer) {
            // The writer's first write: its Begin frame goes to the
            // control shard before any data frame exists anywhere.
            let mut control = self.shards[0].write();
            shard_emit(&mut control, &encode_begin_frame(writer));
        }
        let index_key = registry
            .get(&*table)
            .and_then(|meta| meta.indexed_column.as_deref())
            .and_then(|col| payload.as_ref().and_then(|r| r.get_int(col)));
        let mut guard = self.shards[sid].write();
        let shard = &mut *guard;
        if shard
            .segments
            .last()
            .is_none_or(|s| s.sealed || s.records.len() >= self.config.segment_records)
        {
            self.seal_shard_segment(shard);
            shard.segments.push(Segment::default());
        }
        if let Some(frame) = write_frame {
            shard_emit(shard, &frame);
        }
        let seg = shard.segments.len() - 1;
        let segment = shard
            .segments
            .last_mut()
            .expect("open segment just ensured");
        let ptr = (seg, segment.records.len());
        segment.records.push(LogRecord {
            table: Arc::clone(&table),
            row,
            writer,
            kind,
            commit_ts: None,
            aborted: false,
            index_key,
            payload: Payload::Inline(payload),
        });
        shard.live += 1;
        let stable = shard.tables.entry(Arc::clone(&table)).or_default();
        stable.rows.entry(row).or_default().push(ptr);
        if let Some(key) = index_key {
            *stable.ordered.entry((key, row)).or_insert(0) += 1;
        }
        drop(guard);
        txns.pending.entry(writer).or_default().push((sid, ptr));
        txns.write_sets
            .entry(writer)
            .or_default()
            .push((table, row, kind));
    }

    /// Seal a shard's open segment (if any) and, with spilling on, move
    /// its row payloads out to the shard's spill file.  A durable store
    /// also seals on disk: the shard's write-ahead file is synced and a
    /// fresh one opened, so a sealed segment's frames are never appended
    /// to again.
    fn seal_shard_segment(&self, shard: &mut LogShard) {
        let Some(last) = shard.segments.len().checked_sub(1) else {
            return;
        };
        if shard.segments[last].sealed {
            return;
        }
        shard.segments[last].sealed = true;
        self.spill_segment(shard, last);
        shard_rotate(shard, &self.fsyncs);
    }

    /// Move a sealed segment's inline row payloads out to the shard's
    /// spill file (no-op unless spilling is enabled).
    fn spill_segment(&self, shard: &mut LogShard, seg: usize) {
        if !self.config.spill {
            return;
        }
        // Encode first, then borrow the spill file mutably: a record's
        // payload moves to `Spilled` only once its bytes are durably in
        // the file buffer.
        for offset in 0..shard.segments[seg].records.len() {
            let encoded = match &shard.segments[seg].records[offset].payload {
                Payload::Inline(Some(row)) => encode_row(row),
                // Tombstones and already-spilled payloads stay put.
                Payload::Inline(None) | Payload::Spilled { .. } => continue,
            };
            let at = spill_write(shard, &encoded);
            shard.segments[seg].records[offset].payload = Payload::Spilled {
                offset: at,
                len: u32::try_from(encoded.len())
                    .expect("spilled payload length fits the u32 record field"),
            };
        }
    }

    /// Intern `table` in the registry, emitting its `CreateTable` frame
    /// to the control shard on first sight of a durable store.
    fn intern(&self, registry: &mut BTreeMap<Arc<str>, TableMeta>, table: &str) -> Arc<str> {
        if let Some(meta) = registry.get(table) {
            return Arc::clone(&meta.name);
        }
        if self.durable_on.load(Ordering::Acquire) {
            let mut control = self.shards[0].write();
            shard_emit(&mut control, &encode_create_table_frame(table));
        }
        let name: Arc<str> = Arc::from(table);
        registry.insert(
            Arc::clone(&name),
            TableMeta {
                name: Arc::clone(&name),
                next_row_id: 0,
                indexed_column: None,
            },
        );
        name
    }

    // ------------------------------------------------------------------
    // Read path: a row's records viewed as a version chain.
    // ------------------------------------------------------------------

    fn read_row<F>(&self, table: &str, id: RowId, pick: F) -> Option<Row>
    where
        F: Fn(&LogShard, &[RecordPtr]) -> Option<Row>,
    {
        let shard = self.shards[self.shard_of(table, id)].read();
        let ptrs = shard.tables.get(table)?.rows.get(&id)?;
        pick(&shard, ptrs)
    }

    fn scan<F>(&self, predicate: &RowPredicate, pick: F) -> Vec<(RowId, Row)>
    where
        F: Fn(&LogShard, &[RecordPtr]) -> Option<Row>,
    {
        let indexed = {
            let registry = self.registry.read();
            match registry.get(predicate.table.as_str()) {
                Some(meta) => meta.indexed_column.clone(),
                None => return Vec::new(),
            }
        };
        let mut rows: Vec<(RowId, Row)> = Vec::new();
        for shard_lock in &self.shards {
            let shard = shard_lock.read();
            let Some(stable) = shard.tables.get(predicate.table.as_str()) else {
                continue;
            };
            rows.extend(stable.rows.iter().filter_map(|(id, ptrs)| {
                pick(&shard, ptrs)
                    .filter(|row| predicate.matches(&predicate.table, row))
                    .map(|row| (*id, row))
            }));
        }
        sort_scan_output(indexed.as_deref(), &mut rows);
        rows
    }

    /// Compaction: rewrite one shard's segments without dead records and
    /// repoint the index and pending sets.  Runs synchronously under the
    /// shard's write lock (the caller holds the registry and transaction
    /// table); other shards keep serving.
    fn compact_shard(
        &self,
        registry: &BTreeMap<Arc<str>, TableMeta>,
        txns: &mut TxnTable,
        sid: usize,
    ) {
        let mut guard = self.shards[sid].write();
        let shard = &mut *guard;
        let old_segments = std::mem::take(&mut shard.segments);
        let mut remap: HashMap<RecordPtr, RecordPtr> = HashMap::new();
        let mut segments: Vec<Segment> = Vec::new();
        for (old_seg, segment) in old_segments.into_iter().enumerate() {
            for (old_off, record) in segment.records.into_iter().enumerate() {
                if record.aborted {
                    continue;
                }
                if segments
                    .last()
                    .is_none_or(|s| s.records.len() >= self.config.segment_records)
                {
                    if let Some(full) = segments.last_mut() {
                        full.sealed = true;
                    }
                    segments.push(Segment::default());
                }
                let seg = segments.len() - 1;
                let target = segments.last_mut().expect("open segment just ensured");
                remap.insert((old_seg, old_off), (seg, target.records.len()));
                target.records.push(record);
            }
        }
        shard.segments = segments;
        shard.dead = 0;
        let repoint = |ptrs: &mut Vec<RecordPtr>| {
            for ptr in ptrs.iter_mut() {
                *ptr = *remap
                    .get(ptr)
                    .expect("index pointer names a record that compaction dropped — only aborted (unindexed) records may be dropped");
            }
        };
        for stable in shard.tables.values_mut() {
            for ptrs in stable.rows.values_mut() {
                repoint(ptrs);
            }
        }
        for ptrs in txns.pending.values_mut() {
            for entry in ptrs.iter_mut() {
                if entry.0 == sid {
                    entry.1 = *remap
                        .get(&entry.1)
                        .expect("pending pointer names a record that compaction dropped");
                }
            }
        }
        // Segments sealed by the repack above never pass through
        // `seal_shard_segment`, so spill their surviving inline payloads
        // here — otherwise records carried over from the formerly-open
        // segment would stay on the heap forever and spill mode would
        // silently stop bounding memory after the first compaction.
        for seg in 0..shard.segments.len() {
            if shard.segments[seg].sealed {
                self.spill_segment(shard, seg);
            }
        }
        // A durable shard compacts on disk too: the dead frames the
        // repack just dropped from memory are still in this shard's
        // write-ahead chain, so rewrite it as a fresh generation.
        if shard.wal.is_some() {
            self.rewrite_shard(registry, shard, sid);
        }
    }

    /// Rewrite-on-compact for one shard: emit its post-compaction state
    /// as a fresh generation of write-ahead files (per-table metadata
    /// first, then every surviving record with its commit state inlined),
    /// fsync them, swap the shared manifest, and delete the shard's old
    /// generation.  A crash anywhere in between recovers consistently:
    /// the manifest names each shard's authoritative generation and
    /// recovery deletes the other ones' files.
    ///
    /// The control shard (0) carries one extra responsibility: its chain
    /// is the only home of `Commit` frames, including those covering
    /// records in *other* shards whose frames carry no inline commit
    /// state.  The rewrite therefore re-emits one `Commit` frame per
    /// distinct live committed (timestamp, writer) pair found in the data
    /// shards; replaying one against an already-stamped or absent write
    /// set is a no-op.
    ///
    /// Group-commit interplay: a writer in [`GroupState::queued`] has its
    /// commit timestamp stamped in memory but no durable `Commit` frame
    /// yet — its batch fsync is still pending.  Persisting that commit
    /// state here (a re-emitted `Commit` frame, or an inline
    /// `commit_ts`) would let a crash before the batch flush recover a
    /// commit whose `Write` frames in other shards were never synced — a
    /// torn commit.  The rewrite therefore emits such writers' records
    /// exactly as the live append path did: pending, resolved only by
    /// the batch's own durably-flushed `Commit` frame.  The snapshot of
    /// `queued` is race-free because [`LogStore::flush_batch`] retires a
    /// batch from `queued` while still holding the control shard's write
    /// lock (which this rewrite's caller holds for `sid == 0`), and
    /// because `commit`/`abort` (the compaction trigger) serialise on the
    /// transaction-table mutex, so no writer can join `queued` mid-
    /// rewrite.  For data shards the snapshot can only over-approximate
    /// (a batch may finish flushing concurrently), which merely defers
    /// those records' commit state to shard 0's durable `Commit` frame.
    fn rewrite_shard(
        &self,
        registry: &BTreeMap<Arc<str>, TableMeta>,
        shard: &mut LogShard,
        sid: usize,
    ) {
        let unflushed: HashSet<TxnToken> = self.group.lock().queued.clone();
        // Collect the commit pairs *before* taking the durable mutex:
        // shard read locks (ascending from this one) then `durable` is
        // the store-wide order, and a concurrent data-shard rewrite holds
        // its own shard lock while waiting on `durable`.
        let mut commit_pairs: BTreeSet<(Timestamp, TxnToken)> = BTreeSet::new();
        if sid == 0 {
            for other in self.shards.iter().skip(1) {
                let data = other.read();
                for segment in &data.segments {
                    for rec in &segment.records {
                        if !rec.aborted && !unflushed.contains(&rec.writer) {
                            if let Some(ts) = rec.commit_ts {
                                commit_pairs.insert((ts, rec.writer));
                            }
                        }
                    }
                }
            }
        }
        let mut durable_guard = self.durable.lock();
        let durable = durable_guard
            .as_mut()
            .expect("rewrite of a shard with a wal — the durable state is attached");
        let dir = durable.dir.clone();
        let gen = durable.gens[sid] + 1;
        let fail = |what: &str, e: io::Error| -> ! {
            panic!("durable rewrite (shard {sid}, generation {gen}): {what} failed: {e} — the previous generation is still authoritative, but compaction cannot proceed")
        };
        // Per-table metadata: the row-id allocator, the indexed column,
        // and this shard's ghost row slots (rows whose every record was
        // aborted) — nothing in the surviving record stream re-creates
        // these.
        let mut head = Vec::new();
        for (name, meta) in registry {
            let mut ghosts: Vec<RowId> = shard
                .tables
                .get(&**name)
                .map(|stable| {
                    stable
                        .rows
                        .iter()
                        .filter(|(_, ptrs)| ptrs.is_empty())
                        .map(|(id, _)| *id)
                        .collect()
                })
                .unwrap_or_default();
            ghosts.sort_unstable();
            head.extend_from_slice(&encode_table_meta_frame(
                name,
                meta.next_row_id,
                meta.indexed_column.as_deref(),
                &ghosts,
            ));
        }
        for &(ts, writer) in &commit_pairs {
            head.extend_from_slice(&encode_commit_frame(writer, ts));
        }
        // One file per in-memory segment, so the durable seal boundaries
        // track the in-memory ones; the open segment's file stays open.
        let mut last_file: Option<(File, u64, u64)> = None;
        let segment_count = shard.segments.len().max(1);
        for seg in 0..segment_count {
            let mut buf = std::mem::take(&mut head);
            if let Some(segment) = shard.segments.get(seg) {
                for rec in &segment.records {
                    let payload: Option<Vec<u8>> = match &rec.payload {
                        Payload::Inline(Some(row)) => Some(encode_row(row)),
                        Payload::Inline(None) => None,
                        Payload::Spilled { offset, len } => Some(
                            spill_read(shard, *offset, *len)
                                .expect("spilled payload must be readable back for the rewrite"),
                        ),
                    };
                    let inline_ts = rec.commit_ts.filter(|_| !unflushed.contains(&rec.writer));
                    buf.extend_from_slice(&encode_write_frame(
                        &rec.table,
                        rec.row,
                        rec.writer,
                        rec.kind,
                        inline_ts,
                        payload.as_deref(),
                    ));
                }
            }
            let path = dir.join(wal_file_name(sid, gen, seg as u64));
            let mut file = File::options()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)
                .unwrap_or_else(|e| fail("creating a segment file", e));
            file.write_all(&buf)
                .unwrap_or_else(|e| fail("writing a segment file", e));
            file.sync_data()
                .unwrap_or_else(|e| fail("syncing a segment file", e));
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
            last_file = Some((file, seg as u64, buf.len() as u64));
        }
        durable.gens[sid] = gen;
        write_manifest(&dir, &durable.gens, self.config)
            .unwrap_or_else(|e| fail("swapping the manifest", e));
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        // This shard's old generation is garbage the moment the manifest
        // names the new one; recovery would delete leftovers, but don't
        // leave any.
        if let Ok(entries) = fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                if parse_wal_name(name.to_str().unwrap_or(""))
                    .is_some_and(|(s, g, _)| s == sid && g != gen)
                {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        let (file, file_seq, written) = last_file.expect("at least one segment file was written");
        shard.wal = Some(ShardWal {
            dir,
            shard: sid,
            gen,
            file_seq,
            file,
            written,
            synced: written,
        });
    }

    // ------------------------------------------------------------------
    // Durable log: open / recover / replay.
    // ------------------------------------------------------------------

    /// Open (or recover) a durable log store rooted at `dir`.  A fresh
    /// directory gets a `MANIFEST` recording `config` and an empty first
    /// write-ahead file per shard; a directory that already holds a
    /// manifest is recovered via [`LogStore::recover`] (its manifest
    /// configuration wins — it is what the existing frames were written
    /// under).
    pub fn open_durable(dir: impl Into<PathBuf>, config: LogStoreConfig) -> io::Result<Self> {
        Self::open_durable_inner(dir.into(), config, false)
    }

    /// Open a durable store in a fresh process-private temp directory
    /// that is deleted when the store is dropped.  This is what the
    /// engine's durability knob uses: the fsync tax is real, the files
    /// are throwaway.
    pub fn open_durable_temp(config: LogStoreConfig) -> io::Result<Self> {
        static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "critique-durable-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        Self::open_durable_inner(dir, config, true)
    }

    fn open_durable_inner(
        dir: PathBuf,
        config: LogStoreConfig,
        owns_dir: bool,
    ) -> io::Result<Self> {
        fs::create_dir_all(&dir)?;
        if dir.join("MANIFEST").exists() {
            let store = Self::recover(&dir)?;
            store
                .durable
                .lock()
                .as_mut()
                .expect("recover attaches the durable state")
                .owns_dir = owns_dir;
            return Ok(store);
        }
        let store = Self::with_config(config);
        let gens = vec![0u64; store.shards.len()];
        write_manifest(&dir, &gens, store.config)?;
        for (sid, shard_lock) in store.shards.iter().enumerate() {
            let file = open_wal_file(&dir, sid, 0, 0)?;
            shard_lock.write().wal = Some(ShardWal {
                dir: dir.clone(),
                shard: sid,
                gen: 0,
                file_seq: 0,
                file,
                written: 0,
                synced: 0,
            });
        }
        *store.durable.lock() = Some(DurableShared {
            dir,
            gens,
            owns_dir,
        });
        store.durable_on.store(true, Ordering::Release);
        store.fsyncs.store(1, Ordering::Relaxed);
        Ok(store)
    }

    /// Recover a durable store from `dir`: read the manifest, replay each
    /// shard's live-generation write-ahead chain (deleting orphans a
    /// crashed rewrite left behind), merge the shards, abort every writer
    /// whose commit record never made it to disk, truncate each shard's
    /// torn final frame, and reopen the log for appending.
    ///
    /// Replay is two passes.  Pass A walks the shards in ascending order
    /// and applies every frame *except* `Commit`/`Abort`, which are
    /// collected in the order shard 0's chain recorded them.  Pass B then
    /// applies that deferred control stream — so a commit covering
    /// records in several shards stamps all of them no matter which shard
    /// replayed first, and the commit order recovery sees is exactly the
    /// order the group-commit leader (or the per-commit path) wrote.
    ///
    /// Torn-tail contract, per shard: a commit fsyncs its writer's data
    /// shards *before* appending and syncing the `Commit` frame in shard
    /// 0, so a complete durable `Commit` frame is always preceded by
    /// every durable `Write` frame it covers — dropping a shard's
    /// unterminated suffix can therefore lose pending writes (which
    /// recovery aborts anyway) but never a committed record.  A torn
    /// frame anywhere but a chain's final file is corruption and recovery
    /// refuses it.
    pub fn recover(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let (gens, config) = read_manifest(&dir)?;
        let store = Self::with_config(config);
        if gens.len() != store.shards.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "MANIFEST names {} shard generations but shards={}",
                    gens.len(),
                    store.shards.len()
                ),
            ));
        }
        let mut files: Vec<Vec<u64>> = vec![Vec::new(); store.shards.len()];
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some((sid, gen, seq)) = parse_wal_name(name.to_str().unwrap_or("")) else {
                continue;
            };
            if sid < files.len() && gen == gens[sid] {
                files[sid].push(seq);
            } else {
                // Orphan of a rewrite that crashed around its manifest
                // swap: the manifest decides which generation is real.
                fs::remove_file(entry.path())?;
            }
        }
        let mut deferred: Vec<DeferredControl> = Vec::new();
        let mut tails: Vec<u64> = vec![0; store.shards.len()];
        for (sid, seqs) in files.iter_mut().enumerate() {
            seqs.sort_unstable();
            // A shard's chain always exists on disk from the moment the
            // store opens (seq 0 is created with the manifest; a rewrite
            // writes seqs 0.. before swapping it) and only ever grows by
            // appending the next sequence number.  A wholly missing chain
            // or a gap in the middle is therefore a lost file — silently
            // replaying the remainder would turn it into data loss (or a
            // partially stamped commit), so refuse, like any other
            // corruption of a sealed file.
            if seqs.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "shard {sid}: no write-ahead files for live generation {}",
                        gens[sid]
                    ),
                ));
            }
            if let Some(missing) = (0..seqs.len() as u64).find(|i| seqs[*i as usize] != *i) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "shard {sid}: write-ahead chain of generation {} is missing {}",
                        gens[sid],
                        wal_file_name(sid, gens[sid], missing)
                    ),
                ));
            }
            for (i, &seq) in seqs.iter().enumerate() {
                let path = dir.join(wal_file_name(sid, gens[sid], seq));
                let bytes = fs::read(&path)?;
                let is_last = i + 1 == seqs.len();
                let valid = store.replay_frames(&bytes, is_last, &path, &mut deferred)?;
                if is_last {
                    tails[sid] = valid as u64;
                }
            }
        }
        // Pass B: the deferred control stream, in shard-0 chain order.
        for control in deferred {
            match control {
                DeferredControl::Commit(writer, ts) => store.commit(writer, ts),
                DeferredControl::Abort(writer) => store.abort(writer),
            }
        }
        // Writers with frames but no commit/abort record lost the crash.
        let losers: Vec<TxnToken> = store.txns.lock().write_sets.keys().copied().collect();
        for writer in losers {
            store.abort(writer);
        }
        // Truncate each shard's torn tail on disk and reopen for append.
        for (sid, seqs) in files.iter().enumerate() {
            let (file, file_seq, len) = match seqs.last() {
                Some(&seq) => {
                    let path = dir.join(wal_file_name(sid, gens[sid], seq));
                    let file = File::options().read(true).write(true).open(&path)?;
                    file.set_len(tails[sid])?;
                    file.sync_data()?;
                    drop(file);
                    (File::options().append(true).open(&path)?, seq, tails[sid])
                }
                None => (open_wal_file(&dir, sid, gens[sid], 0)?, 0, 0),
            };
            store.shards[sid].write().wal = Some(ShardWal {
                dir: dir.clone(),
                shard: sid,
                gen: gens[sid],
                file_seq,
                file,
                written: len,
                synced: len,
            });
        }
        *store.durable.lock() = Some(DurableShared {
            dir,
            gens,
            owns_dir: false,
        });
        store.durable_on.store(true, Ordering::Release);
        store.fsyncs.store(1, Ordering::Relaxed);
        Ok(store)
    }

    /// Replay one write-ahead file's frames, returning the length of the
    /// valid prefix.  An incomplete frame at the end of a chain's *final*
    /// file is a torn tail (dropped); anywhere else it is corruption.
    fn replay_frames(
        &self,
        bytes: &[u8],
        is_last: bool,
        path: &Path,
        deferred: &mut Vec<DeferredControl>,
    ) -> io::Result<usize> {
        let mut at = 0usize;
        while let Some(header) = bytes.get(at..at + 4) {
            let body_len = u32::from_le_bytes(header.try_into().expect("4-byte slice")) as usize;
            let Some(body) = bytes.get(at + 4..at + 4 + body_len) else {
                break;
            };
            self.replay_frame(body, deferred).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: frame at byte {at}: {e}", path.display()),
                )
            })?;
            at += 4 + body_len;
        }
        if at != bytes.len() && !is_last {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: torn frame at byte {at} of a sealed write-ahead file",
                    path.display()
                ),
            ));
        }
        Ok(at)
    }

    /// Apply one decoded frame through the ordinary mutation paths (no
    /// shard has its wal attached yet, so nothing is re-emitted).
    /// `Commit`/`Abort` frames are deferred to recovery's second pass.
    fn replay_frame(&self, body: &[u8], deferred: &mut Vec<DeferredControl>) -> Result<(), String> {
        let mut cur = FrameCursor { bytes: body, at: 0 };
        match cur.u8()? {
            FRAME_BEGIN => {
                // Informational: the writer's first Write frame re-opens
                // its write set.
                cur.u64()?;
            }
            FRAME_WRITE => {
                let writer = TxnToken(cur.u64()?);
                let table = cur.str()?;
                let row = RowId(cur.u64()?);
                let kind = write_kind_from_tag(cur.u8()?)?;
                let commit_ts = (cur.u8()? == 1)
                    .then(|| cur.u64())
                    .transpose()?
                    .map(Timestamp);
                let payload = if cur.u8()? == 1 {
                    let len = cur.u32()? as usize;
                    Some(decode_row(cur.take(len)?).ok_or("payload bytes do not decode as a row")?)
                } else {
                    None
                };
                self.replay_write(&table, row, writer, kind, payload, commit_ts);
            }
            FRAME_COMMIT => {
                let writer = TxnToken(cur.u64()?);
                let ts = Timestamp(cur.u64()?);
                deferred.push(DeferredControl::Commit(writer, ts));
            }
            FRAME_ABORT => {
                let writer = TxnToken(cur.u64()?);
                deferred.push(DeferredControl::Abort(writer));
            }
            FRAME_CREATE_TABLE => {
                let table = cur.str()?;
                self.create_table(&table);
            }
            FRAME_CREATE_INDEX => {
                let table = cur.str()?;
                let column = cur.str()?;
                self.create_index(&table, &column);
            }
            FRAME_TABLE_META => {
                let table = cur.str()?;
                let next_row_id = cur.u64()?;
                let indexed = (cur.u8()? == 1).then(|| cur.str()).transpose()?;
                let ghost_count = cur.u32()?;
                let mut ghosts = Vec::with_capacity(ghost_count as usize);
                for _ in 0..ghost_count {
                    ghosts.push(RowId(cur.u64()?));
                }
                let mut registry = self.registry.write();
                let name = self.intern(&mut registry, &table);
                let meta = registry.get_mut(&*name).expect("table just interned");
                meta.next_row_id = meta.next_row_id.max(next_row_id);
                // Merge, don't clobber: a data shard's metadata may have
                // been written before the index existed, but shard 0's
                // CreateIndex frame (replayed earlier in this pass) is
                // still authoritative.
                if indexed.is_some() {
                    meta.indexed_column = indexed;
                }
                drop(registry);
                for ghost in ghosts {
                    let sid = self.shard_of(&table, ghost);
                    let mut shard = self.shards[sid].write();
                    shard
                        .tables
                        .entry(Arc::clone(&name))
                        .or_default()
                        .rows
                        .entry(ghost)
                        .or_default();
                }
            }
            other => return Err(format!("unknown frame tag {other}")),
        }
        cur.expect_end()
    }

    /// Replay one `Write` frame.  Frames from the live append path carry
    /// no commit state (a deferred `Commit`/`Abort` frame resolves them
    /// in pass B); frames from a compaction rewrite inline it, so the
    /// pending bookkeeping the append path creates is immediately
    /// retired.
    fn replay_write(
        &self,
        table: &str,
        id: RowId,
        writer: TxnToken,
        kind: WriteKind,
        payload: Option<Row>,
        commit_ts: Option<Timestamp>,
    ) {
        let mut registry = self.registry.write();
        let name = self.intern(&mut registry, table);
        if matches!(kind, WriteKind::Insert) {
            let meta = registry.get_mut(&*name).expect("table just interned");
            meta.next_row_id = meta.next_row_id.max(id.0 + 1);
        }
        let mut txns = self.txns.lock();
        self.append(&registry, &mut txns, name, id, writer, payload, kind);
        if let Some(ts) = commit_ts {
            let (sid, ptr) = txns
                .pending
                .get_mut(&writer)
                .and_then(Vec::pop)
                .expect("append just pushed a pending pointer");
            if txns.pending.get(&writer).is_some_and(Vec::is_empty) {
                txns.pending.remove(&writer);
            }
            let writes = txns
                .write_sets
                .get_mut(&writer)
                .expect("append just pushed a write-set entry");
            writes.pop();
            if writes.is_empty() {
                txns.write_sets.remove(&writer);
            }
            self.shards[sid].write().segments[ptr.0].records[ptr.1].commit_ts = Some(ts);
            let mut last = self.last_commit.lock();
            if last.is_none_or(|t| t < ts) {
                *last = Some(ts);
            }
        }
    }

    // ------------------------------------------------------------------
    // Group commit.
    // ------------------------------------------------------------------

    /// Park until `writer`'s queued commit record is durably flushed —
    /// either by becoming the batch leader (first committer in holds the
    /// window open, emits every queued `Commit` frame, and issues one
    /// fsync) or by waiting a leader out.  Returns immediately when the
    /// writer has nothing queued, or when a crash-simulation hold is on.
    fn group_flush(&self, writer: TxnToken) {
        loop {
            let mut group = self.group.lock();
            if !group.queued.contains(&writer) {
                return;
            }
            if group.hold {
                // Crash-simulation hook: acknowledge without durability;
                // the held batch flushes via `flush_held_commits`.
                return;
            }
            if group.leader {
                self.group_cv.wait(&mut group);
                continue;
            }
            group.leader = true;
            drop(group);
            if let GroupCommit::On { window_micros } = self.config.group_commit {
                if window_micros > 0 {
                    std::thread::sleep(std::time::Duration::from_micros(window_micros));
                }
            }
            let batch = std::mem::take(&mut self.group.lock().queue);
            // `flush_batch` retires the batch from `queued` itself (under
            // the control shard's lock — see its docs).
            self.flush_batch(&batch);
            let mut group = self.group.lock();
            group.leader = false;
            self.group_cv.notify_all();
            // Loop: if this writer's record was in the batch it is no
            // longer queued and the next iteration returns.
        }
    }

    /// Durably flush one batch of commit records: fsync every dirty data
    /// shard (their `Write` frames must hit disk before any `Commit`
    /// frame covering them does), then append the batch's `Commit`
    /// frames to the control shard in enqueue order and fsync **once**.
    ///
    /// The batch is retired from [`GroupState::queued`] *while the
    /// control shard's write lock is still held*: a control-shard
    /// rewrite (`LogStore::rewrite_shard`) snapshots `queued` under
    /// that same lock to decide which commits are safe to persist, so
    /// "writer still queued" must mean "commit frame not yet durable" —
    /// clearing after releasing the lock would let a rewrite drop a
    /// durably-flushed commit from the chain it is replacing.
    fn flush_batch(&self, batch: &[(TxnToken, Timestamp)]) {
        if batch.is_empty() {
            return;
        }
        for shard_lock in self.shards.iter().skip(1) {
            shard_sync(&mut shard_lock.write(), &self.fsyncs);
        }
        let mut control = self.shards[0].write();
        for &(writer, ts) in batch {
            shard_emit(&mut control, &encode_commit_frame(writer, ts));
        }
        shard_sync(&mut control, &self.fsyncs);
        let mut group = self.group.lock();
        for (writer, _) in batch {
            group.queued.remove(writer);
        }
        drop(group);
        drop(control);
    }

    /// Whether `table` has a (possibly empty) version slot for `id` in
    /// its owning shard — the existence check behind `update`/`delete`.
    fn row_slot_exists(&self, table: &str, id: RowId) -> bool {
        let shard = self.shards[self.shard_of(table, id)].read();
        shard
            .tables
            .get(table)
            .is_some_and(|stable| stable.rows.contains_key(&id))
    }
}

// ---------------------------------------------------------------------
// Record access helpers (free functions so closures can borrow `LogShard`
// immutably while the store's methods hold the lock guard).
// ---------------------------------------------------------------------

fn record<'a>(shard: &'a LogShard, ptr: &RecordPtr) -> &'a LogRecord {
    &shard.segments[ptr.0].records[ptr.1]
}

fn payload_row(shard: &LogShard, rec: &LogRecord) -> Option<Row> {
    match &rec.payload {
        Payload::Inline(row) => row.clone(),
        Payload::Spilled { offset, len } => {
            let bytes = spill_read(shard, *offset, *len)
                .expect("spilled payload must be readable back from the spill file");
            Some(decode_row(&bytes).expect("spilled payload bytes must decode as a row"))
        }
    }
}

fn is_tombstone(rec: &LogRecord) -> bool {
    matches!(rec.payload, Payload::Inline(None))
}

/// The most recent record regardless of commit state (dirty read).
fn latest_any(shard: &LogShard, ptrs: &[RecordPtr]) -> Option<Row> {
    ptrs.last()
        .and_then(|p| payload_row(shard, record(shard, p)))
}

/// The most recent committed record.
fn latest_committed(shard: &LogShard, ptrs: &[RecordPtr]) -> Option<Row> {
    ptrs.iter()
        .rev()
        .map(|p| record(shard, p))
        .find(|r| r.commit_ts.is_some())
        .and_then(|r| payload_row(shard, r))
}

/// The most recent record committed at or before `ts`.
fn committed_as_of<'a>(
    shard: &'a LogShard,
    ptrs: &[RecordPtr],
    ts: Timestamp,
) -> Option<&'a LogRecord> {
    ptrs.iter()
        .rev()
        .map(|p| record(shard, p))
        .find(|r| matches!(r.commit_ts, Some(c) if c <= ts))
}

/// Snapshot Isolation visibility (own uncommitted write first).
fn visible_for(
    shard: &LogShard,
    ptrs: &[RecordPtr],
    reader: TxnToken,
    start_ts: Timestamp,
) -> Option<Row> {
    ptrs.iter()
        .rev()
        .map(|p| record(shard, p))
        .find(|r| r.writer == reader && r.commit_ts.is_none())
        .or_else(|| committed_as_of(shard, ptrs, start_ts))
        .and_then(|r| payload_row(shard, r))
}

impl StorageBackend for LogStore {
    fn backend_name(&self) -> &'static str {
        "logstore"
    }

    fn create_table(&self, table: &str) {
        let mut registry = self.registry.write();
        self.intern(&mut registry, table);
    }

    fn tables(&self) -> Vec<TableName> {
        self.registry.read().keys().map(|k| k.to_string()).collect()
    }

    fn row_ids(&self, table: &str) -> Vec<RowId> {
        let mut ids: Vec<RowId> = Vec::new();
        for shard_lock in &self.shards {
            let shard = shard_lock.read();
            if let Some(stable) = shard.tables.get(table) {
                ids.extend(stable.rows.keys().copied());
            }
        }
        ids.sort_unstable();
        ids
    }

    fn insert(&self, table: &str, writer: TxnToken, row: Row) -> RowId {
        let (name, id) = {
            let mut registry = self.registry.write();
            let name = self.intern(&mut registry, table);
            let meta = registry.get_mut(&*name).expect("table just interned");
            let id = RowId(meta.next_row_id);
            meta.next_row_id += 1;
            (name, id)
        };
        let registry = self.registry.read();
        let mut txns = self.txns.lock();
        self.append(
            &registry,
            &mut txns,
            name,
            id,
            writer,
            Some(row),
            WriteKind::Insert,
        );
        id
    }

    fn update(
        &self,
        table: &str,
        writer: TxnToken,
        id: RowId,
        row: Row,
    ) -> Result<(), StorageError> {
        let registry = self.registry.read();
        let name = match registry.get(table) {
            Some(meta) => Arc::clone(&meta.name),
            None => return Err(StorageError::NoSuchTable(table.to_string())),
        };
        if !self.row_slot_exists(&name, id) {
            return Err(StorageError::NoSuchRow(table.to_string(), id));
        }
        let mut txns = self.txns.lock();
        self.append(
            &registry,
            &mut txns,
            name,
            id,
            writer,
            Some(row),
            WriteKind::Update,
        );
        Ok(())
    }

    fn delete(&self, table: &str, writer: TxnToken, id: RowId) -> Result<(), StorageError> {
        let registry = self.registry.read();
        let name = match registry.get(table) {
            Some(meta) => Arc::clone(&meta.name),
            None => return Err(StorageError::NoSuchTable(table.to_string())),
        };
        if !self.row_slot_exists(&name, id) {
            return Err(StorageError::NoSuchRow(table.to_string(), id));
        }
        let mut txns = self.txns.lock();
        self.append(
            &registry,
            &mut txns,
            name,
            id,
            writer,
            None,
            WriteKind::Delete,
        );
        Ok(())
    }

    fn get_latest_any(&self, table: &str, id: RowId) -> Option<Row> {
        self.read_row(table, id, latest_any)
    }

    fn get_latest_committed(&self, table: &str, id: RowId) -> Option<Row> {
        self.read_row(table, id, latest_committed)
    }

    fn get_committed_as_of(&self, table: &str, id: RowId, ts: Timestamp) -> Option<Row> {
        self.read_row(table, id, |shard, ptrs| {
            committed_as_of(shard, ptrs, ts).and_then(|r| payload_row(shard, r))
        })
    }

    fn get_visible(
        &self,
        table: &str,
        id: RowId,
        reader: TxnToken,
        start_ts: Timestamp,
    ) -> Option<Row> {
        self.read_row(table, id, |shard, ptrs| {
            visible_for(shard, ptrs, reader, start_ts)
        })
    }

    fn scan_latest_any(&self, predicate: &RowPredicate) -> Vec<(RowId, Row)> {
        self.scan(predicate, latest_any)
    }

    fn scan_latest_committed(&self, predicate: &RowPredicate) -> Vec<(RowId, Row)> {
        self.scan(predicate, latest_committed)
    }

    fn scan_committed_as_of(&self, predicate: &RowPredicate, ts: Timestamp) -> Vec<(RowId, Row)> {
        self.scan(predicate, |shard, ptrs| {
            committed_as_of(shard, ptrs, ts).and_then(|r| payload_row(shard, r))
        })
    }

    fn scan_visible(
        &self,
        predicate: &RowPredicate,
        reader: TxnToken,
        start_ts: Timestamp,
    ) -> Vec<(RowId, Row)> {
        self.scan(predicate, |shard, ptrs| {
            visible_for(shard, ptrs, reader, start_ts)
        })
    }

    fn create_index(&self, table: &str, column: &str) {
        let mut registry = self.registry.write();
        let name = self.intern(&mut registry, table);
        let meta = registry.get_mut(&*name).expect("table just interned");
        if meta.indexed_column.as_deref() == Some(column) {
            return;
        }
        meta.indexed_column = Some(column.to_string());
        if self.durable_on.load(Ordering::Acquire) {
            let mut control = self.shards[0].write();
            shard_emit(&mut control, &encode_create_index_frame(table, column));
        }
        // Backfill shard by shard: stamp every live record with its key
        // in the new column, then rebuild the shard's ordered slice from
        // those stamps.
        for shard_lock in &self.shards {
            let mut guard = shard_lock.write();
            let shard = &mut *guard;
            let Some(stable) = shard.tables.get(&*name) else {
                continue;
            };
            let ptrs: Vec<RecordPtr> = stable
                .rows
                .values()
                .flat_map(|v| v.iter().copied())
                .collect();
            let mut ordered: BTreeMap<(i64, RowId), usize> = BTreeMap::new();
            let mut stamped: Vec<(RecordPtr, Option<i64>)> = Vec::with_capacity(ptrs.len());
            for ptr in ptrs {
                let rec = record(shard, &ptr);
                let key = payload_row(shard, rec).and_then(|r| r.get_int(column));
                if let Some(key) = key {
                    *ordered.entry((key, rec.row)).or_insert(0) += 1;
                }
                stamped.push((ptr, key));
            }
            for (ptr, key) in stamped {
                shard.segments[ptr.0].records[ptr.1].index_key = key;
            }
            let stable = shard
                .tables
                .get_mut(&*name)
                .expect("shard table just probed");
            stable.ordered = ordered;
        }
    }

    fn indexed_column(&self, table: &str) -> Option<String> {
        self.registry
            .read()
            .get(table)
            .and_then(|meta| meta.indexed_column.clone())
    }

    fn scan_range(
        &self,
        table: &str,
        column: &str,
        range: &KeyInterval,
        view: ScanView,
    ) -> Vec<(RowId, Row)> {
        if range.is_int_empty() {
            return Vec::new();
        }
        let indexed = {
            let registry = self.registry.read();
            match registry.get(table) {
                Some(meta) => meta.indexed_column.clone(),
                None => return Vec::new(),
            }
        };
        let mut rows: Vec<(i64, RowId, Row)> = Vec::new();
        for shard_lock in &self.shards {
            let shard = shard_lock.read();
            let Some(stable) = shard.tables.get(table) else {
                continue;
            };
            let pick = |ptrs: &[RecordPtr]| -> Option<Row> {
                match view {
                    ScanView::LatestAny => latest_any(&shard, ptrs),
                    ScanView::LatestCommitted => latest_committed(&shard, ptrs),
                    ScanView::CommittedAsOf(ts) => {
                        committed_as_of(&shard, ptrs, ts).and_then(|r| payload_row(&shard, r))
                    }
                    ScanView::Visible { reader, start_ts } => {
                        visible_for(&shard, ptrs, reader, start_ts)
                    }
                }
            };
            if indexed.as_deref() == Some(column) {
                // The ordered slice covers every live record in this
                // shard, so the probe can only over-approximate; the
                // picked version is re-checked.
                let lo = (range.lo().unwrap_or(i64::MIN), RowId(0));
                let hi = (range.hi().unwrap_or(i64::MAX), RowId(u64::MAX));
                let mut visited = HashSet::new();
                for &(_, id) in stable.ordered.range(lo..=hi).map(|(entry, _)| entry) {
                    if !visited.insert(id) {
                        continue;
                    }
                    if let Some(row) = stable.rows.get(&id).and_then(|ptrs| pick(ptrs)) {
                        if let Some(key) = row.get_int(column) {
                            if range.contains(key) {
                                rows.push((key, id, row));
                            }
                        }
                    }
                }
            } else {
                for (id, ptrs) in &stable.rows {
                    if let Some(row) = pick(ptrs) {
                        if let Some(key) = row.get_int(column) {
                            if range.contains(key) {
                                rows.push((key, *id, row));
                            }
                        }
                    }
                }
            }
        }
        rows.sort_unstable_by_key(|(key, id, _)| (*key, *id));
        rows.into_iter().map(|(_, id, row)| (id, row)).collect()
    }

    fn writes_of(&self, writer: TxnToken) -> Vec<(TableName, RowId, WriteKind)> {
        self.txns
            .lock()
            .write_sets
            .get(&writer)
            .map(|writes| {
                writes
                    .iter()
                    .map(|(table, id, kind)| (table.to_string(), *id, *kind))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn first_committer_conflict(
        &self,
        writer: TxnToken,
        start_ts: Timestamp,
    ) -> Option<(TableName, RowId)> {
        let writes: Vec<(Arc<str>, RowId)> = {
            let txns = self.txns.lock();
            let writes = txns.write_sets.get(&writer)?;
            writes
                .iter()
                .map(|(table, id, _)| (Arc::clone(table), *id))
                .collect()
        };
        for (table, id) in writes {
            let shard = self.shards[self.shard_of(&table, id)].read();
            let conflict = shard
                .tables
                .get(&*table)
                .and_then(|t| t.rows.get(&id))
                .expect("write-set entry names an indexed row — the append path indexes before recording")
                .iter()
                .map(|p| record(&shard, p))
                .any(|r| r.writer != writer && matches!(r.commit_ts, Some(c) if c > start_ts));
            if conflict {
                return Some((table.to_string(), id));
            }
        }
        None
    }

    fn has_foreign_uncommitted_on_writes(&self, writer: TxnToken) -> bool {
        let writes: Vec<(Arc<str>, RowId)> = {
            let txns = self.txns.lock();
            match txns.write_sets.get(&writer) {
                Some(writes) => writes
                    .iter()
                    .map(|(table, id, _)| (Arc::clone(table), *id))
                    .collect(),
                None => return false,
            }
        };
        writes.iter().any(|(table, id)| {
            let shard = self.shards[self.shard_of(table, *id)].read();
            shard
                .tables
                .get(&**table)
                .and_then(|t| t.rows.get(id))
                .expect("write-set entry names an indexed row — the append path indexes before recording")
                .iter()
                .map(|p| record(&shard, p))
                .any(|r| r.writer != writer && r.commit_ts.is_none())
        })
    }

    fn commit(&self, writer: TxnToken, ts: Timestamp) {
        let mut txns = self.txns.lock();
        let had_writes = txns.write_sets.remove(&writer).is_some();
        let pending = txns.pending.remove(&writer).unwrap_or_default();
        // Stamp shard by shard, ascending (the store-wide lock order).
        let mut by_shard: BTreeMap<usize, Vec<RecordPtr>> = BTreeMap::new();
        for (sid, ptr) in pending {
            by_shard.entry(sid).or_default().push(ptr);
        }
        for (&sid, ptrs) in &by_shard {
            let mut shard = self.shards[sid].write();
            for ptr in ptrs {
                let rec = &mut shard.segments[ptr.0].records[ptr.1];
                assert_eq!(
                    rec.writer, writer,
                    "commit({writer}): pending pointer resolves to a record owned by {} — the pending set and the log disagree",
                    rec.writer,
                );
                assert!(
                    rec.commit_ts.is_none(),
                    "commit({writer}): record at {ptr:?} is already committed at {:?} — a version must be stamped exactly once",
                    rec.commit_ts,
                );
                rec.commit_ts = Some(ts);
            }
        }
        if had_writes {
            {
                let mut last = self.last_commit.lock();
                if last.is_none_or(|t| t < ts) {
                    *last = Some(ts);
                }
            }
            // The commit boundary: the transaction is durable exactly
            // when its Commit frame (and, transitively, every data frame
            // it covers) is on disk.  Read-only commits (no write set)
            // touch nothing durable and pay no fsync.
            if self.durable_on.load(Ordering::Acquire) {
                match self.config.group_commit {
                    GroupCommit::Off => {
                        // Data shards first: a durable Commit frame must
                        // never cover un-synced Write frames, even when a
                        // concurrent committer's shard-0 fsync lands
                        // between our emit and our sync.
                        for &sid in by_shard.keys() {
                            if sid != 0 {
                                shard_sync(&mut self.shards[sid].write(), &self.fsyncs);
                            }
                        }
                        let mut control = self.shards[0].write();
                        shard_emit(&mut control, &encode_commit_frame(writer, ts));
                        shard_sync(&mut control, &self.fsyncs);
                    }
                    GroupCommit::On { .. } => {
                        // Enqueue only; the engine's follow-up
                        // `flush_commit` (outside its commit-sequence
                        // lock) parks behind the batch leader.  Enqueue
                        // order is commit order — the engine serialises
                        // calls to `commit`.
                        let mut group = self.group.lock();
                        group.queue.push((writer, ts));
                        group.queued.insert(writer);
                    }
                }
            }
        }
    }

    fn flush_commit(&self, writer: TxnToken) {
        if matches!(self.config.group_commit, GroupCommit::On { .. })
            && self.durable_on.load(Ordering::Acquire)
        {
            self.group_flush(writer);
        }
    }

    fn abort(&self, writer: TxnToken) {
        // Registry first: compaction (triggered below) snapshots table
        // metadata, and the store-wide order is registry → txns → shards.
        let registry = self.registry.read();
        let mut txns = self.txns.lock();
        txns.write_sets.remove(&writer);
        let pending = txns.pending.remove(&writer).unwrap_or_default();
        // No fsync: a writer with no durable Commit frame is aborted by
        // recovery anyway, so the Abort frame is an optimisation (it lets
        // replay reclaim the records) rather than a durability point.
        if !pending.is_empty() && self.durable_on.load(Ordering::Acquire) {
            let mut control = self.shards[0].write();
            shard_emit(&mut control, &encode_abort_frame(writer));
        }
        let mut by_shard: BTreeMap<usize, Vec<RecordPtr>> = BTreeMap::new();
        for (sid, ptr) in pending {
            by_shard.entry(sid).or_default().push(ptr);
        }
        let mut compact: Vec<usize> = Vec::new();
        for (&sid, ptrs) in &by_shard {
            let mut guard = self.shards[sid].write();
            let shard = &mut *guard;
            for ptr in ptrs {
                let rec = &mut shard.segments[ptr.0].records[ptr.1];
                assert!(
                    rec.commit_ts.is_none(),
                    "abort({writer}): record at {ptr:?} was already committed — commit and abort are mutually exclusive",
                );
                rec.aborted = true;
                // Unlink from the row's index entry; the (possibly empty)
                // entry itself stays, like an empty version chain.
                let table = Arc::clone(&rec.table);
                let row = rec.row;
                let index_key = rec.index_key;
                let stable = shard.tables.get_mut(&*table).expect(
                    "aborting an indexed record — the append path indexes before recording",
                );
                stable
                    .rows
                    .get_mut(&row)
                    .expect("aborting an indexed record — the append path indexes before recording")
                    .retain(|p| p != ptr);
                if let Some(key) = index_key {
                    if let Some(count) = stable.ordered.get_mut(&(key, row)) {
                        *count -= 1;
                        if *count == 0 {
                            stable.ordered.remove(&(key, row));
                        }
                    }
                }
                shard.dead += 1;
                shard.live -= 1;
            }
            if shard.dead >= self.config.compact_watermark {
                compact.push(sid);
            }
        }
        for sid in compact {
            self.compact_shard(&registry, &mut txns, sid);
        }
    }

    fn snapshot(&self, ts: Timestamp) -> Snapshot<'_> {
        Snapshot::new(self, ts)
    }

    fn committed_row_count(&self, table: &str) -> usize {
        self.shards
            .iter()
            .map(|shard_lock| {
                let shard = shard_lock.read();
                let Some(stable) = shard.tables.get(table) else {
                    return 0;
                };
                stable
                    .rows
                    .values()
                    .filter(|ptrs| {
                        ptrs.iter()
                            .rev()
                            .map(|p| record(&shard, p))
                            .find(|r| r.commit_ts.is_some())
                            .is_some_and(|r| !is_tombstone(r))
                    })
                    .count()
            })
            .sum()
    }

    fn version_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().live).sum()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl fmt::Debug for LogStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LogStore")
            .field("shards", &self.shards.len())
            .field("segments", &self.segment_count())
            .field("live", &self.version_count())
            .field("dead", &self.dead_record_count())
            .field("tables", &self.registry.read().keys().collect::<Vec<_>>())
            .field("spill", &self.config.spill)
            .finish()
    }
}

impl Drop for LogStore {
    fn drop(&mut self) {
        // A held or queued batch flushes before the files close: dropping
        // a store must not lose commits it acknowledged.
        let batch = std::mem::take(&mut self.group.lock().queue);
        self.flush_batch(&batch);
        let durable = self.durable.lock().take();
        if let Some(durable) = durable {
            self.durable_on.store(false, Ordering::Release);
            for shard_lock in &self.shards {
                if let Some(wal) = shard_lock.write().wal.take() {
                    // A clean drop leaves nothing to lose at recovery.
                    let _ = wal.file.sync_data();
                }
            }
            if durable.owns_dir {
                let _ = fs::remove_dir_all(&durable.dir);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Spill file plumbing (per shard).
// ---------------------------------------------------------------------

/// Append `bytes` to the shard's spill file (creating it on first use),
/// returning the offset they start at.  A failed spill is an invariant
/// breach — the caller is about to drop the payload's inline copy, so
/// swallowing the error would make the record silently unreadable.  It is
/// counted ([`LogStore::spill_failure_count`]) and surfaced as a panic,
/// matching the store.rs convention for broken internal invariants.
fn spill_write(shard: &mut LogShard, bytes: &[u8]) -> u64 {
    if shard.spill.is_none() {
        match create_spill_file() {
            Ok(file) => shard.spill = Some(SpillFile::new(file)),
            Err(e) => {
                shard.spill_failures += 1;
                panic!("spill file creation failed: {e} — a sealed segment's payloads cannot leave the heap");
            }
        }
    }
    let injected = std::mem::take(&mut shard.fail_next_spill_write);
    let (result, at) = {
        let spill = shard.spill.as_mut().expect("spill file just ensured");
        let at = spill.len;
        // Positioned write at the recorded length: a failed or partial
        // write never desynchronises `len` from where later payloads
        // actually land — the recorded offset stays authoritative.
        let result = if injected {
            Err(io::Error::other("injected spill write failure"))
        } else {
            spill.write_at(bytes, at)
        };
        if result.is_ok() {
            spill.len += bytes.len() as u64;
        }
        (result, at)
    };
    if let Err(e) = result {
        shard.spill_failures += 1;
        panic!(
            "spill write of {} bytes at offset {at} failed: {e} — the sealed payload would be unreadable",
            bytes.len(),
        );
    }
    at
}

/// Create the unlinked temp file: open, then immediately remove the path,
/// so the data is reclaimed by the OS no matter how the process exits.
fn create_spill_file() -> io::Result<File> {
    static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir();
    let unique = format!(
        "critique-logstore-{}-{}.spill",
        std::process::id(),
        SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
    );
    let path = dir.join(unique);
    let file = File::options()
        .read(true)
        .write(true)
        .create_new(true)
        .open(&path)?;
    // Unlink immediately; the open handle keeps the inode alive.
    let _ = fs::remove_file(&path);
    Ok(file)
}

/// Read a spilled payload back.  `None` only when no spill file exists
/// (never written to); an IO failure on a recorded payload is — like a
/// failed write — an invariant breach and panics.
fn spill_read(shard: &LogShard, offset: u64, len: u32) -> Option<Vec<u8>> {
    let spill = shard.spill.as_ref()?;
    Some(spill.read_at(offset, len).unwrap_or_else(|e| {
        panic!("spill read of {len} bytes at offset {offset} failed: {e} — a recorded payload vanished")
    }))
}

// ---------------------------------------------------------------------
// Durable write-ahead layer: frame codec and file plumbing.
//
// A write-ahead file is a sequence of frames, each `[u32 LE body length]`
// followed by the body; a body is a one-byte tag followed by the tag's
// fields (u64/u32 little-endian, strings as u32 length + UTF-8, row
// payloads through `encode_row`).  The length prefix is what makes the
// torn-tail contract checkable: a frame is either wholly present or
// wholly absent.
// ---------------------------------------------------------------------

/// A transaction's first write (informational; replay reopens the write
/// set at the first `Write` frame).
const FRAME_BEGIN: u8 = 1;
/// One versioned record: writer, table, row, write kind, optional inline
/// commit timestamp (only in rewrite output), optional row payload
/// (absent = tombstone).
const FRAME_WRITE: u8 = 2;
/// Commit record: everything the writer appended is durable at this
/// timestamp.  Always in shard 0's chain; the per-commit path fsyncs
/// immediately after this frame, the group-commit leader after its
/// whole batch.
const FRAME_COMMIT: u8 = 3;
/// Abort record: the writer's records are dead (an optimisation for
/// replay — recovery aborts commit-less writers regardless).
const FRAME_ABORT: u8 = 4;
/// Table registration, in intern order.  Always in shard 0's chain.
const FRAME_CREATE_TABLE: u8 = 5;
/// Ordered secondary index registration; replay re-runs the backfill.
const FRAME_CREATE_INDEX: u8 = 6;
/// Per-table metadata at the head of a rewrite generation: row-id
/// allocator, indexed column, and the rewritten shard's ghost row slots,
/// none of which the surviving record stream re-creates.
const FRAME_TABLE_META: u8 = 7;

fn write_kind_tag(kind: WriteKind) -> u8 {
    match kind {
        WriteKind::Insert => 0,
        WriteKind::Update => 1,
        WriteKind::Delete => 2,
    }
}

fn write_kind_from_tag(tag: u8) -> Result<WriteKind, String> {
    match tag {
        0 => Ok(WriteKind::Insert),
        1 => Ok(WriteKind::Update),
        2 => Ok(WriteKind::Delete),
        other => Err(format!("unknown write-kind tag {other}")),
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Checked length-to-`u32` conversion for the codec's length fields: a
/// silent `as` truncation past 4 GiB would corrupt the log; fail loudly
/// instead.
fn frame_len(len: usize, what: &str) -> u32 {
    u32::try_from(len)
        .unwrap_or_else(|_| panic!("{what} of {len} bytes overflows the u32 frame length field"))
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, frame_len(s.len(), "frame string"));
    out.extend_from_slice(s.as_bytes());
}

/// Wrap a frame body in its length header.
fn frame(body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + body.len());
    push_u32(&mut out, frame_len(body.len(), "frame body"));
    out.extend_from_slice(&body);
    out
}

fn encode_begin_frame(writer: TxnToken) -> Vec<u8> {
    let mut body = vec![FRAME_BEGIN];
    push_u64(&mut body, writer.0);
    frame(body)
}

fn encode_write_frame(
    table: &str,
    row: RowId,
    writer: TxnToken,
    kind: WriteKind,
    commit_ts: Option<Timestamp>,
    payload: Option<&[u8]>,
) -> Vec<u8> {
    let mut body = vec![FRAME_WRITE];
    push_u64(&mut body, writer.0);
    push_str(&mut body, table);
    push_u64(&mut body, row.0);
    body.push(write_kind_tag(kind));
    match commit_ts {
        Some(ts) => {
            body.push(1);
            push_u64(&mut body, ts.0);
        }
        None => body.push(0),
    }
    match payload {
        Some(bytes) => {
            body.push(1);
            push_u32(&mut body, frame_len(bytes.len(), "row payload"));
            body.extend_from_slice(bytes);
        }
        None => body.push(0),
    }
    frame(body)
}

fn encode_commit_frame(writer: TxnToken, ts: Timestamp) -> Vec<u8> {
    let mut body = vec![FRAME_COMMIT];
    push_u64(&mut body, writer.0);
    push_u64(&mut body, ts.0);
    frame(body)
}

fn encode_abort_frame(writer: TxnToken) -> Vec<u8> {
    let mut body = vec![FRAME_ABORT];
    push_u64(&mut body, writer.0);
    frame(body)
}

fn encode_create_table_frame(table: &str) -> Vec<u8> {
    let mut body = vec![FRAME_CREATE_TABLE];
    push_str(&mut body, table);
    frame(body)
}

fn encode_create_index_frame(table: &str, column: &str) -> Vec<u8> {
    let mut body = vec![FRAME_CREATE_INDEX];
    push_str(&mut body, table);
    push_str(&mut body, column);
    frame(body)
}

fn encode_table_meta_frame(
    table: &str,
    next_row_id: u64,
    indexed: Option<&str>,
    ghosts: &[RowId],
) -> Vec<u8> {
    let mut body = vec![FRAME_TABLE_META];
    push_str(&mut body, table);
    push_u64(&mut body, next_row_id);
    match indexed {
        Some(column) => {
            body.push(1);
            push_str(&mut body, column);
        }
        None => body.push(0),
    }
    push_u32(&mut body, frame_len(ghosts.len(), "ghost row list"));
    for ghost in ghosts {
        push_u64(&mut body, ghost.0);
    }
    frame(body)
}

/// Bounds-checked reader over one frame body.
struct FrameCursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> FrameCursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let slice = self
            .bytes
            .get(self.at..self.at + n)
            .ok_or_else(|| format!("frame body ends early at byte {}", self.at))?;
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4-byte slice"),
        ))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8-byte slice"),
        ))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?)
            .map(str::to_string)
            .map_err(|_| "frame string is not UTF-8".to_string())
    }

    fn expect_end(&self) -> Result<(), String> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after frame body",
                self.bytes.len() - self.at
            ))
        }
    }
}

/// Append an encoded frame to a shard's open write-ahead file.  A no-op
/// when the shard has no wal attached (non-durable stores and recovery
/// replay); an append failure on a live durable store is fatal — the log
/// could no longer be the truth.
fn shard_emit(shard: &mut LogShard, frame: &[u8]) {
    if let Some(wal) = shard.wal.as_mut() {
        wal.file.write_all(frame).unwrap_or_else(|e| {
            panic!(
                "write-ahead append under {} failed: {e} — the log can no longer be the truth",
                wal.dir.display()
            )
        });
        wal.written += frame.len() as u64;
    }
}

/// Fsync a shard's open write-ahead file (the commit boundary), bumping
/// the store's always-on fsync counter.  Skipped when every written byte
/// is already covered — that dirty check is what lets a commit sync only
/// the data shards it actually touched, and the group-commit leader skip
/// shards the batch never wrote.
fn shard_sync(shard: &mut LogShard, fsyncs: &AtomicU64) {
    if let Some(wal) = shard.wal.as_mut() {
        if wal.written == wal.synced {
            return;
        }
        wal.file.sync_data().unwrap_or_else(|e| {
            panic!(
                "write-ahead fsync under {} failed: {e} — a reported commit might not be durable",
                wal.dir.display()
            )
        });
        wal.synced = wal.written;
        fsyncs.fetch_add(1, Ordering::Relaxed);
    }
}

/// Seal a shard's open write-ahead file (sync it if dirty) and open the
/// next one in the generation — the durable side of an in-memory segment
/// seal.
fn shard_rotate(shard: &mut LogShard, fsyncs: &AtomicU64) {
    let Some(wal) = shard.wal.as_mut() else {
        return;
    };
    if wal.written != wal.synced {
        wal.file.sync_data().unwrap_or_else(|e| {
            panic!(
                "write-ahead seal fsync under {} failed: {e} — a sealed segment might not be durable",
                wal.dir.display()
            )
        });
        wal.synced = wal.written;
        fsyncs.fetch_add(1, Ordering::Relaxed);
    }
    wal.file_seq += 1;
    wal.file = open_wal_file(&wal.dir, wal.shard, wal.gen, wal.file_seq).unwrap_or_else(|e| {
        panic!(
            "opening the next write-ahead file under {} failed: {e}",
            wal.dir.display()
        )
    });
    wal.written = 0;
    wal.synced = 0;
}

fn wal_file_name(shard: usize, gen: u64, seq: u64) -> String {
    format!("wal-{shard}-{gen}-{seq}.seg")
}

fn parse_wal_name(name: &str) -> Option<(usize, u64, u64)> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    let (shard, rest) = rest.split_once('-')?;
    let (gen, seq) = rest.split_once('-')?;
    Some((shard.parse().ok()?, gen.parse().ok()?, seq.parse().ok()?))
}

fn open_wal_file(dir: &Path, shard: usize, gen: u64, seq: u64) -> io::Result<File> {
    File::options()
        .append(true)
        .create(true)
        .open(dir.join(wal_file_name(shard, gen, seq)))
}

/// Write the manifest atomically: temp file, sync, rename over, then a
/// best-effort directory sync so the rename itself is on disk.  The
/// manifest names every shard's live generation in one record — a
/// crashed rewrite can therefore never leave half the shards on a new
/// generation: either the rename landed (all gens new) or it did not
/// (all gens old), and recovery deletes whichever side lost.
fn write_manifest(dir: &Path, gens: &[u64], config: LogStoreConfig) -> io::Result<()> {
    let gens_list = gens
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let group = match config.group_commit {
        GroupCommit::Off => "off".to_string(),
        GroupCommit::On { window_micros } => format!("on:{window_micros}"),
    };
    let body = format!(
        "gens={gens_list}\nshards={}\nsegment_records={}\ncompact_watermark={}\nspill={}\ngroup_commit={group}\n",
        config.shards,
        config.segment_records,
        config.compact_watermark,
        u8::from(config.spill),
    );
    let tmp = dir.join("MANIFEST.tmp");
    let mut file = File::create(&tmp)?;
    file.write_all(body.as_bytes())?;
    file.sync_data()?;
    drop(file);
    fs::rename(&tmp, dir.join("MANIFEST"))?;
    if let Ok(dirf) = File::open(dir) {
        let _ = dirf.sync_all();
    }
    Ok(())
}

fn read_manifest(dir: &Path) -> io::Result<(Vec<u64>, LogStoreConfig)> {
    let text = fs::read_to_string(dir.join("MANIFEST"))?;
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("MANIFEST: {what}"));
    let mut gens: Option<Vec<u64>> = None;
    let mut config = LogStoreConfig::default();
    for line in text.lines() {
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        match key {
            "gens" => {
                gens = Some(
                    value
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(|s| s.parse().map_err(|_| bad("bad shard generation")))
                        .collect::<io::Result<Vec<u64>>>()?,
                );
            }
            "shards" => config.shards = value.parse().map_err(|_| bad("bad shards"))?,
            "segment_records" => {
                config.segment_records = value.parse().map_err(|_| bad("bad segment_records"))?;
            }
            "compact_watermark" => {
                config.compact_watermark =
                    value.parse().map_err(|_| bad("bad compact_watermark"))?;
            }
            "spill" => config.spill = value == "1",
            "group_commit" => {
                config.group_commit = if value == "off" {
                    GroupCommit::Off
                } else if let Some(micros) = value.strip_prefix("on:") {
                    GroupCommit::On {
                        window_micros: micros
                            .parse()
                            .map_err(|_| bad("bad group_commit window"))?,
                    }
                } else {
                    return Err(bad("bad group_commit"));
                };
            }
            _ => {}
        }
    }
    Ok((gens.ok_or_else(|| bad("missing gens"))?, config))
}

// ---------------------------------------------------------------------
// Row codec (the offline serde shim does not serialise, so the spill
// format is hand-rolled: length-prefixed column names and tagged values).
// ---------------------------------------------------------------------

fn encode_row(row: &Row) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(row.len() as u32).to_le_bytes());
    for (name, value) in row.columns() {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        match value {
            ColumnValue::Int(v) => {
                out.push(0);
                out.extend_from_slice(&v.to_le_bytes());
            }
            ColumnValue::Text(s) => {
                out.push(1);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            ColumnValue::Bool(b) => {
                out.push(2);
                out.push(u8::from(*b));
            }
            ColumnValue::Null => out.push(3),
        }
    }
    out
}

fn decode_row(bytes: &[u8]) -> Option<Row> {
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
        let slice = bytes.get(*at..*at + n)?;
        *at += n;
        Some(slice)
    };
    let take_u32 =
        |at: &mut usize| -> Option<u32> { Some(u32::from_le_bytes(take(at, 4)?.try_into().ok()?)) };
    let ncols = take_u32(&mut at)?;
    let mut row = Row::new();
    for _ in 0..ncols {
        let name_len = take_u32(&mut at)? as usize;
        let name = std::str::from_utf8(take(&mut at, name_len)?)
            .ok()?
            .to_string();
        let tag = *take(&mut at, 1)?.first()?;
        match tag {
            0 => {
                let v = i64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?);
                row.set(&name, v);
            }
            1 => {
                let len = take_u32(&mut at)? as usize;
                let s = std::str::from_utf8(take(&mut at, len)?).ok()?.to_string();
                row.set(&name, s.as_str());
            }
            2 => {
                let b = *take(&mut at, 1)?.first()? != 0;
                row.set(&name, b);
            }
            3 => row.set(&name, ColumnValue::Null),
            _ => return None,
        }
    }
    (at == bytes.len()).then_some(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Condition, RowPredicate};

    fn balance_row(v: i64) -> Row {
        Row::new().with("balance", v)
    }

    fn tiny(spill: bool) -> LogStore {
        LogStore::with_config(LogStoreConfig {
            segment_records: 4,
            compact_watermark: 3,
            spill,
            ..LogStoreConfig::default()
        })
    }

    fn tiny_sharded(spill: bool) -> LogStore {
        LogStore::with_config(LogStoreConfig {
            segment_records: 4,
            compact_watermark: 3,
            spill,
            shards: 4,
            ..LogStoreConfig::default()
        })
    }

    #[test]
    fn insert_commit_read_cycle() {
        let store = LogStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(50));
        assert!(store.get_latest_committed("accounts", id).is_none());
        assert_eq!(
            store
                .get_latest_any("accounts", id)
                .unwrap()
                .get_int("balance"),
            Some(50)
        );
        store.commit(TxnToken(1), Timestamp(1));
        assert_eq!(
            store
                .get_latest_committed("accounts", id)
                .unwrap()
                .get_int("balance"),
            Some(50)
        );
        assert_eq!(store.version_count(), 1);
        assert_eq!(store.committed_row_count("accounts"), 1);
    }

    #[test]
    fn update_requires_existing_row_and_table() {
        let store = LogStore::new();
        store.create_table("accounts");
        let err = store
            .update("accounts", TxnToken(1), RowId(99), balance_row(1))
            .unwrap_err();
        assert!(matches!(err, StorageError::NoSuchRow(_, _)));
        let err = store
            .update("missing", TxnToken(1), RowId(0), balance_row(1))
            .unwrap_err();
        assert!(matches!(err, StorageError::NoSuchTable(_)));
        let err = store.delete("missing", TxnToken(1), RowId(0)).unwrap_err();
        assert!(matches!(err, StorageError::NoSuchTable(_)));
    }

    #[test]
    fn abort_unlinks_versions_and_keeps_the_row_slot() {
        let store = LogStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(100));
        store.commit(TxnToken(1), Timestamp(1));
        store
            .update("accounts", TxnToken(2), id, balance_row(999))
            .unwrap();
        store.abort(TxnToken(2));
        assert_eq!(
            store
                .get_latest_any("accounts", id)
                .unwrap()
                .get_int("balance"),
            Some(100)
        );
        assert!(store.writes_of(TxnToken(2)).is_empty());
        assert_eq!(store.version_count(), 1);

        // A row whose only version aborted keeps its (empty) slot: a later
        // update through the same id succeeds, exactly like an empty chain.
        let ghost = store.insert("accounts", TxnToken(3), balance_row(5));
        store.abort(TxnToken(3));
        assert!(store.get_latest_any("accounts", ghost).is_none());
        assert!(store.row_ids("accounts").contains(&ghost));
        store
            .update("accounts", TxnToken(4), ghost, balance_row(6))
            .unwrap();
        store.commit(TxnToken(4), Timestamp(2));
        assert_eq!(
            store
                .get_latest_committed("accounts", ghost)
                .unwrap()
                .get_int("balance"),
            Some(6)
        );
    }

    #[test]
    fn compaction_reclaims_aborted_records_and_preserves_reads() {
        let store = tiny(false);
        let id = store.insert("t", TxnToken(1), balance_row(1));
        store.commit(TxnToken(1), Timestamp(1));
        // Burn through aborted versions until the watermark trips.
        for round in 0..5u64 {
            let txn = TxnToken(10 + round);
            store.update("t", txn, id, balance_row(-1)).unwrap();
            store.update("t", txn, id, balance_row(-2)).unwrap();
            store.abort(txn);
        }
        assert!(
            store.dead_record_count() < 3,
            "watermark should have compacted: {} dead",
            store.dead_record_count()
        );
        store.update("t", TxnToken(99), id, balance_row(2)).unwrap();
        store.commit(TxnToken(99), Timestamp(5));
        assert_eq!(
            store
                .get_latest_committed("t", id)
                .unwrap()
                .get_int("balance"),
            Some(2)
        );
        // Historical reads survive compaction.
        assert_eq!(
            store
                .get_committed_as_of("t", id, Timestamp(1))
                .unwrap()
                .get_int("balance"),
            Some(1)
        );
        assert_eq!(store.version_count(), 2);
    }

    #[test]
    fn commit_spanning_segments_and_pending_remap() {
        let store = tiny(false);
        // One transaction writes enough to span several 4-record segments,
        // while another aborts in between to force a compaction that must
        // remap the first transaction's pending pointers.
        let id = store.insert("t", TxnToken(1), balance_row(0));
        store.commit(TxnToken(1), Timestamp(1));
        for i in 0..6 {
            store.update("t", TxnToken(2), id, balance_row(i)).unwrap();
        }
        for round in 0..3u64 {
            let txn = TxnToken(50 + round);
            store.update("t", txn, id, balance_row(-1)).unwrap();
            store.abort(txn); // third abort trips the watermark
        }
        assert!(store.segment_count() >= 1);
        store.commit(TxnToken(2), Timestamp(2));
        assert_eq!(
            store
                .get_latest_committed("t", id)
                .unwrap()
                .get_int("balance"),
            Some(5)
        );
        assert_eq!(store.version_count(), 7);
    }

    #[test]
    fn snapshot_and_predicate_scans() {
        let store = tiny(false);
        let active = RowPredicate::new("employees", Condition::eq("active", true));
        let e1 = store.insert("employees", TxnToken(1), Row::new().with("active", true));
        store.insert("employees", TxnToken(1), Row::new().with("active", false));
        store.commit(TxnToken(1), Timestamp(1));
        store.insert("employees", TxnToken(2), Row::new().with("active", true));

        let committed = store.scan_latest_committed(&active);
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].0, e1);
        assert_eq!(store.scan_latest_any(&active).len(), 2);
        assert_eq!(
            store.scan_visible(&active, TxnToken(3), Timestamp(1)).len(),
            1
        );
        assert_eq!(
            store.scan_visible(&active, TxnToken(2), Timestamp(1)).len(),
            2
        );

        store.commit(TxnToken(2), Timestamp(2));
        let snap1 = store.snapshot(Timestamp(1));
        assert_eq!(snap1.count(&active), 1);
        let snap2 = store.snapshot(Timestamp(2));
        assert_eq!(snap2.count(&active), 2);
    }

    #[test]
    fn first_committer_conflict_detection() {
        let store = LogStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(100));
        store.commit(TxnToken(1), Timestamp(1));
        store
            .update("accounts", TxnToken(2), id, balance_row(120))
            .unwrap();
        store
            .update("accounts", TxnToken(3), id, balance_row(130))
            .unwrap();
        assert!(store.has_foreign_uncommitted_on_writes(TxnToken(2)));
        store.commit(TxnToken(2), Timestamp(2));
        assert_eq!(
            store.first_committer_conflict(TxnToken(3), Timestamp(1)),
            Some(("accounts".to_string(), id))
        );
        assert!(store
            .first_committer_conflict(TxnToken(9), Timestamp(0))
            .is_none());
    }

    #[test]
    fn sharded_store_routes_rows_and_pins_scan_order() {
        let store = tiny_sharded(false);
        let ids: Vec<RowId> = (0..12)
            .map(|i| store.insert("t", TxnToken(1), balance_row(i)))
            .collect();
        store.commit(TxnToken(1), Timestamp(1));
        // Rows are spread over more than one shard (FNV over 12 row ids
        // into 4 shards cannot land in one), yet the scan order is the
        // pinned backend-independent order.
        let populated = store
            .shards
            .iter()
            .filter(|s| s.read().tables.contains_key("t"))
            .count();
        assert!(populated > 1, "12 rows stayed in {populated} shard(s)");
        assert_eq!(store.row_ids("t"), ids);
        let scanned = store.scan_latest_committed(&RowPredicate::whole_table("t"));
        assert_eq!(
            scanned.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            ids,
            "scan order is ascending row id regardless of shard layout"
        );
        assert_eq!(store.committed_row_count("t"), 12);
        assert_eq!(store.version_count(), 12);

        // Cross-shard visibility plumbing: conflicts and aborts find the
        // owning shard.
        store
            .update("t", TxnToken(2), ids[3], balance_row(-1))
            .unwrap();
        assert!(!store.has_foreign_uncommitted_on_writes(TxnToken(2)));
        store
            .update("t", TxnToken(3), ids[3], balance_row(-2))
            .unwrap();
        assert!(store.has_foreign_uncommitted_on_writes(TxnToken(2)));
        store.commit(TxnToken(2), Timestamp(2));
        assert_eq!(
            store.first_committer_conflict(TxnToken(3), Timestamp(1)),
            Some(("t".to_string(), ids[3]))
        );
        store.abort(TxnToken(3));
        assert_eq!(
            store
                .get_latest_any("t", ids[3])
                .unwrap()
                .get_int("balance"),
            Some(-1)
        );
    }

    #[test]
    fn sharded_compaction_is_local_to_the_dirty_shard() {
        let store = tiny_sharded(false);
        let ids: Vec<RowId> = (0..8)
            .map(|i| store.insert("t", TxnToken(1), balance_row(i)))
            .collect();
        store.commit(TxnToken(1), Timestamp(1));
        let victim = ids[0];
        let vsid = store.shard_of("t", victim);
        let live_before: Vec<usize> = store.shards.iter().map(|s| s.read().live).collect();
        for round in 0..5u64 {
            let txn = TxnToken(10 + round);
            store.update("t", txn, victim, balance_row(-1)).unwrap();
            store.abort(txn);
        }
        assert!(
            store.dead_record_count() < 3,
            "the victim's shard should have compacted"
        );
        // Other shards were never repacked: their live counts are intact
        // and every row still reads back.
        for (sid, before) in live_before.iter().enumerate() {
            if sid != vsid {
                assert_eq!(store.shards[sid].read().live, *before, "shard {sid}");
            }
        }
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(
                store
                    .get_latest_committed("t", *id)
                    .unwrap()
                    .get_int("balance"),
                Some(i as i64)
            );
        }
    }

    // Spilling is a no-op off unix (no positioned IO), so these two
    // tests only make sense there.
    #[cfg(unix)]
    #[test]
    fn spill_round_trips_sealed_segments() {
        let store = tiny(true);
        let mut ids = Vec::new();
        for i in 0..10 {
            ids.push(
                store.insert(
                    "t",
                    TxnToken(1),
                    Row::new()
                        .with("balance", i)
                        .with("owner", format!("user-{i}").as_str())
                        .with("active", i % 2 == 0)
                        .with("note", ColumnValue::Null),
                ),
            );
        }
        store.commit(TxnToken(1), Timestamp(1));
        // 10 records at 4 per segment: at least two sealed, bytes spilled.
        assert!(store.spilled_bytes() > 0, "sealed segments should spill");
        for (i, id) in ids.iter().enumerate() {
            let row = store.get_latest_committed("t", *id).unwrap();
            assert_eq!(row.get_int("balance"), Some(i as i64));
            assert_eq!(row.get_text("owner"), Some(format!("user-{i}").as_str()));
            assert_eq!(row.get_bool("active"), Some(i % 2 == 0));
            assert!(row.get("note").unwrap().is_null());
        }
        // Tombstones never spill and still read as deletions.
        store.delete("t", TxnToken(2), ids[0]).unwrap();
        store.commit(TxnToken(2), Timestamp(2));
        assert!(store.get_latest_committed("t", ids[0]).is_none());
        assert_eq!(store.committed_row_count("t"), 9);
    }

    #[cfg(unix)]
    #[test]
    fn compaction_spills_carried_over_payloads() {
        let store = LogStore::with_config(LogStoreConfig {
            segment_records: 4,
            compact_watermark: 2,
            spill: true,
            ..LogStoreConfig::default()
        });
        // Three live rows plus one abort fill segment 0; two more live
        // rows land in segment 1 (inline, segment still open).
        let mut ids: Vec<RowId> = (0..3)
            .map(|i| store.insert("t", TxnToken(1), balance_row(i)))
            .collect();
        store
            .update("t", TxnToken(10), ids[0], balance_row(-1))
            .unwrap();
        store.abort(TxnToken(10));
        ids.push(store.insert("t", TxnToken(1), balance_row(3)));
        ids.push(store.insert("t", TxnToken(1), balance_row(4)));
        store.commit(TxnToken(1), Timestamp(1));
        let before = store.spilled_bytes();
        assert!(before > 0, "sealing segment 0 should have spilled");

        // A second abort trips the watermark; the repack packs the five
        // live records as [4 sealed, 1 open], and the inline record
        // carried into the sealed segment must spill there too.
        store
            .update("t", TxnToken(11), ids[1], balance_row(-2))
            .unwrap();
        store.abort(TxnToken(11));
        assert_eq!(
            store.dead_record_count(),
            0,
            "watermark should have compacted"
        );
        assert!(
            store.spilled_bytes() > before,
            "compaction-sealed segments must spill their inline payloads"
        );
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(
                store
                    .get_latest_committed("t", *id)
                    .unwrap()
                    .get_int("balance"),
                Some(i as i64),
                "row {i} after compaction + spill"
            );
        }
    }

    #[test]
    fn ordered_index_backfills_and_tracks_writes() {
        let store = tiny(false);
        // Rows exist before the index: create_index must backfill.
        let a = store.insert("t", TxnToken(1), balance_row(30));
        let b = store.insert("t", TxnToken(1), balance_row(10));
        store.commit(TxnToken(1), Timestamp(1));
        store.create_index("t", "balance");
        assert_eq!(
            StorageBackend::indexed_column(&store, "t").as_deref(),
            Some("balance")
        );

        let all = store.scan_range(
            "t",
            "balance",
            &KeyInterval::everything(),
            ScanView::LatestCommitted,
        );
        assert_eq!(
            all.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![b, a],
            "ascending (key, row id) order"
        );
        let low = store.scan_range(
            "t",
            "balance",
            &KeyInterval::at_most(15),
            ScanView::LatestCommitted,
        );
        assert_eq!(low.len(), 1);
        assert_eq!(low[0].0, b);

        // Maintained through update/abort, including across segment seals.
        store.update("t", TxnToken(2), a, balance_row(5)).unwrap();
        let dirty = store.scan_range(
            "t",
            "balance",
            &KeyInterval::at_most(15),
            ScanView::LatestAny,
        );
        assert_eq!(
            dirty.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![a, b]
        );
        store.abort(TxnToken(2));
        let after = store.scan_range(
            "t",
            "balance",
            &KeyInterval::at_most(15),
            ScanView::LatestAny,
        );
        assert_eq!(after.iter().map(|(id, _)| *id).collect::<Vec<_>>(), vec![b]);

        // Plain scans over an indexed table come back in key order too.
        let pred = RowPredicate::whole_table("t");
        let scanned = store.scan_latest_committed(&pred);
        assert_eq!(
            scanned.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![b, a]
        );
    }

    #[test]
    fn scan_range_survives_compaction_and_spill() {
        let store = LogStore::with_config(LogStoreConfig {
            segment_records: 4,
            compact_watermark: 2,
            spill: true,
            ..LogStoreConfig::default()
        });
        store.create_index("t", "balance");
        let ids: Vec<RowId> = (0..6)
            .map(|i| store.insert("t", TxnToken(1), balance_row(i * 10)))
            .collect();
        store.commit(TxnToken(1), Timestamp(1));
        // Trip compaction with aborted updates.
        for round in 0..2u64 {
            let txn = TxnToken(20 + round);
            store.update("t", txn, ids[0], balance_row(-5)).unwrap();
            store.abort(txn);
        }
        assert_eq!(
            store.dead_record_count(),
            0,
            "watermark should have compacted"
        );
        let mid = store.scan_range(
            "t",
            "balance",
            &KeyInterval::range(Some(10), Some(30)),
            ScanView::LatestCommitted,
        );
        assert_eq!(
            mid.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![ids[1], ids[2], ids[3]]
        );
        // Historical view through the same entry point.
        let asof = store.scan_range(
            "t",
            "balance",
            &KeyInterval::everything(),
            ScanView::CommittedAsOf(Timestamp(1)),
        );
        assert_eq!(asof.len(), 6);
        // Empty interval is empty without touching the index.
        assert!(store
            .scan_range("t", "balance", &KeyInterval::empty(), ScanView::LatestAny)
            .is_empty());
        // Unindexed column falls back to a full pass with the same contract.
        let fallback = store.scan_range(
            "t",
            "missing",
            &KeyInterval::everything(),
            ScanView::LatestAny,
        );
        assert!(fallback.is_empty());
    }

    #[test]
    fn row_codec_round_trips() {
        let row = Row::new()
            .with("a", -42)
            .with("b", "héllo")
            .with("c", true)
            .with("d", ColumnValue::Null);
        assert_eq!(decode_row(&encode_row(&row)), Some(row));
        assert_eq!(decode_row(&encode_row(&Row::new())), Some(Row::new()));
        assert_eq!(decode_row(&[1, 2, 3]), None);
    }

    #[test]
    fn manifest_round_trips_sharded_config() {
        let dir = durable_dir("manifest");
        fs::create_dir_all(&dir).unwrap();
        let config = LogStoreConfig {
            segment_records: 9,
            compact_watermark: 17,
            spill: true,
            shards: 3,
            group_commit: GroupCommit::On { window_micros: 250 },
        };
        write_manifest(&dir, &[4, 0, 7], config).unwrap();
        let (gens, read) = read_manifest(&dir).unwrap();
        assert_eq!(gens, vec![4, 0, 7]);
        assert_eq!(read.segment_records, 9);
        assert_eq!(read.compact_watermark, 17);
        assert!(read.spill);
        assert_eq!(read.shards, 3);
        assert_eq!(read.group_commit, GroupCommit::On { window_micros: 250 });
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_names_round_trip() {
        assert_eq!(wal_file_name(2, 5, 9), "wal-2-5-9.seg");
        assert_eq!(parse_wal_name("wal-2-5-9.seg"), Some((2, 5, 9)));
        assert_eq!(parse_wal_name("wal-5-9.seg"), None, "old two-part names");
        assert_eq!(parse_wal_name("MANIFEST"), None);
    }

    #[test]
    fn row_ids_are_sequential_per_table_and_sorted() {
        let store = tiny(false);
        let a0 = store.insert("a", TxnToken(1), balance_row(0));
        let b0 = store.insert("b", TxnToken(1), balance_row(0));
        let a1 = store.insert("a", TxnToken(1), balance_row(0));
        assert_eq!((a0, b0, a1), (RowId(0), RowId(0), RowId(1)));
        assert_eq!(store.row_ids("a"), vec![RowId(0), RowId(1)]);
        assert_eq!(store.tables(), vec!["a".to_string(), "b".to_string()]);
        assert!(store.row_ids("missing").is_empty());
    }

    #[test]
    fn debug_and_config_accessors() {
        let store = tiny(true);
        assert_eq!(store.config().segment_records, 4);
        assert_eq!(store.backend_name(), "logstore");
        let text = format!("{store:?}");
        assert!(text.contains("LogStore"));
    }

    #[test]
    fn spill_write_failure_is_counted_and_panics() {
        let store = tiny(true);
        store.fail_next_spill_write();
        // The 5th insert seals segment 0, whose spill hits the injected
        // IO error: the failure must surface, never be swallowed.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for i in 0..5 {
                store.insert("t", TxnToken(1), balance_row(i));
            }
        }));
        assert!(
            result.is_err(),
            "an injected spill write failure must surface as a panic"
        );
        assert_eq!(store.spill_failure_count(), 1);
    }

    fn durable_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "critique-logstore-test-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_empty_store_recovers_empty() {
        let dir = durable_dir("empty");
        drop(LogStore::open_durable(&dir, LogStoreConfig::default()).unwrap());
        let store = LogStore::recover(&dir).unwrap();
        assert!(store.tables().is_empty());
        let id = store.insert("t", TxnToken(1), balance_row(1));
        assert_eq!(id, RowId(0));
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_round_trip_recovers_committed_state_and_aborts_losers() {
        let dir = durable_dir("round-trip");
        let cfg = LogStoreConfig {
            segment_records: 4,
            compact_watermark: 64,
            spill: false,
            ..LogStoreConfig::default()
        };
        let (a, b);
        {
            let store = LogStore::open_durable(&dir, cfg).unwrap();
            a = store.insert("accounts", TxnToken(1), balance_row(10));
            b = store.insert("accounts", TxnToken(1), balance_row(20));
            store.commit(TxnToken(1), Timestamp(5));
            store.create_index("accounts", "balance");
            store
                .update("accounts", TxnToken(2), a, balance_row(11))
                .unwrap();
            store.commit(TxnToken(2), Timestamp(7));
            store.delete("accounts", TxnToken(3), b).unwrap();
            store.commit(TxnToken(3), Timestamp(8));
            // Still in flight at the "crash": must be aborted by recovery.
            store
                .update("accounts", TxnToken(4), a, balance_row(999))
                .unwrap();
            assert!(store.fsync_count() >= 3, "each writing commit fsyncs");
        }
        let store = LogStore::recover(&dir).unwrap();
        assert_eq!(store.config().segment_records, 4, "manifest config wins");
        assert_eq!(
            store
                .get_latest_committed("accounts", a)
                .unwrap()
                .get_int("balance"),
            Some(11)
        );
        assert_eq!(
            store
                .get_committed_as_of("accounts", a, Timestamp(5))
                .unwrap()
                .get_int("balance"),
            Some(10),
            "historical reads survive recovery"
        );
        assert!(
            store.get_latest_committed("accounts", b).is_none(),
            "tombstone survives recovery"
        );
        assert_eq!(store.committed_row_count("accounts"), 1);
        assert!(
            store.writes_of(TxnToken(4)).is_empty(),
            "the commit-less writer lost the crash"
        );
        assert_eq!(
            store
                .get_latest_any("accounts", a)
                .unwrap()
                .get_int("balance"),
            Some(11),
            "the loser's record is unlinked"
        );
        assert_eq!(
            StorageBackend::indexed_column(&store, "accounts").as_deref(),
            Some("balance")
        );
        assert_eq!(
            store.scan_range(
                "accounts",
                "balance",
                &KeyInterval::everything(),
                ScanView::LatestCommitted,
            ),
            vec![(a, balance_row(11))],
            "the ordered index view is rebuilt"
        );
        assert_eq!(store.last_commit_ts(), Some(Timestamp(8)));
        // The row-id allocator continues where it left off, and a second
        // crash/recover cycle sees the post-recovery writes.
        let c = store.insert("accounts", TxnToken(9), balance_row(30));
        assert_eq!(c, RowId(2));
        store.commit(TxnToken(9), Timestamp(9));
        drop(store);
        let store = LogStore::recover(&dir).unwrap();
        assert_eq!(
            store
                .get_latest_committed("accounts", c)
                .unwrap()
                .get_int("balance"),
            Some(30)
        );
        assert_eq!(store.last_commit_ts(), Some(Timestamp(9)));
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_durable_round_trip_merges_shards() {
        let dir = durable_dir("sharded-round-trip");
        let cfg = LogStoreConfig {
            segment_records: 4,
            compact_watermark: 64,
            shards: 4,
            ..LogStoreConfig::default()
        };
        let ids: Vec<RowId>;
        {
            let store = LogStore::open_durable(&dir, cfg).unwrap();
            ids = (0..10)
                .map(|i| store.insert("accounts", TxnToken(1), balance_row(i)))
                .collect();
            store.commit(TxnToken(1), Timestamp(1));
            store.create_index("accounts", "balance");
            for (i, id) in ids.iter().enumerate().take(5) {
                let txn = TxnToken(10 + i as u64);
                store
                    .update("accounts", txn, *id, balance_row(100 + i as i64))
                    .unwrap();
                store.commit(txn, Timestamp(2 + i as u64));
            }
            // In flight at the crash.
            store
                .update("accounts", TxnToken(50), ids[9], balance_row(-1))
                .unwrap();
            // Every shard's chain exists on disk.
            for sid in 0..4 {
                assert!(
                    dir.join(wal_file_name(sid, 0, 0)).exists(),
                    "shard {sid} chain missing"
                );
            }
        }
        let store = LogStore::recover(&dir).unwrap();
        assert_eq!(store.config().shards, 4, "manifest pins the shard count");
        for (i, id) in ids.iter().enumerate() {
            let want = if i < 5 { 100 + i as i64 } else { i as i64 };
            assert_eq!(
                store
                    .get_latest_committed("accounts", *id)
                    .unwrap()
                    .get_int("balance"),
                Some(want),
                "row {i}"
            );
        }
        assert_eq!(store.last_commit_ts(), Some(Timestamp(6)));
        assert!(store.writes_of(TxnToken(50)).is_empty(), "loser aborted");
        assert_eq!(
            store
                .get_committed_as_of("accounts", ids[0], Timestamp(1))
                .unwrap()
                .get_int("balance"),
            Some(0),
            "pre-update history survives the cross-shard merge"
        );
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewrite_on_compact_bounds_disk_and_recovers() {
        let dir = durable_dir("rewrite");
        let cfg = LogStoreConfig {
            segment_records: 4,
            compact_watermark: 3,
            spill: true,
            ..LogStoreConfig::default()
        };
        let (id, ghost);
        {
            let store = LogStore::open_durable(&dir, cfg).unwrap();
            id = store.insert("t", TxnToken(1), balance_row(1));
            store.commit(TxnToken(1), Timestamp(1));
            ghost = store.insert("t", TxnToken(2), balance_row(5));
            store.abort(TxnToken(2));
            for round in 0..5u64 {
                let txn = TxnToken(10 + round);
                store.update("t", txn, id, balance_row(-1)).unwrap();
                store.update("t", txn, id, balance_row(-2)).unwrap();
                store.abort(txn);
            }
            let gen = store.durable_generation().unwrap();
            assert!(gen >= 1, "the watermark should have forced a rewrite");
            // Only the live generation's files remain on disk.
            for entry in fs::read_dir(&dir).unwrap() {
                let name = entry.unwrap().file_name();
                if let Some((s, g, _)) = parse_wal_name(name.to_str().unwrap()) {
                    assert_eq!(s, 0, "a single-shard store only writes shard 0");
                    assert_eq!(g, gen, "stale generation left behind: {name:?}");
                }
            }
            store.update("t", TxnToken(99), id, balance_row(2)).unwrap();
            store.commit(TxnToken(99), Timestamp(5));
        }
        let store = LogStore::recover(&dir).unwrap();
        assert_eq!(
            store
                .get_latest_committed("t", id)
                .unwrap()
                .get_int("balance"),
            Some(2)
        );
        assert_eq!(
            store
                .get_committed_as_of("t", id, Timestamp(1))
                .unwrap()
                .get_int("balance"),
            Some(1),
            "committed history survives the rewrite"
        );
        assert!(
            store.row_ids("t").contains(&ghost),
            "ghost row slots survive the rewrite via table metadata"
        );
        store
            .update("t", TxnToken(7), ghost, balance_row(6))
            .unwrap();
        store.commit(TxnToken(7), Timestamp(6));
        assert_eq!(
            store
                .get_latest_committed("t", ghost)
                .unwrap()
                .get_int("balance"),
            Some(6)
        );
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_rewrite_bumps_only_the_compacted_shard() {
        let dir = durable_dir("sharded-rewrite");
        let cfg = LogStoreConfig {
            segment_records: 4,
            compact_watermark: 3,
            shards: 4,
            ..LogStoreConfig::default()
        };
        let ids: Vec<RowId>;
        let victim_sid;
        {
            let store = LogStore::open_durable(&dir, cfg).unwrap();
            ids = (0..8)
                .map(|i| store.insert("t", TxnToken(1), balance_row(i)))
                .collect();
            store.commit(TxnToken(1), Timestamp(1));
            victim_sid = store.shard_of("t", ids[0]);
            for round in 0..5u64 {
                let txn = TxnToken(10 + round);
                store.update("t", txn, ids[0], balance_row(-1)).unwrap();
                store.abort(txn);
            }
            let gens = store.durable_generations().unwrap();
            assert!(
                gens[victim_sid] >= 1,
                "the dirty shard should have been rewritten: {gens:?}"
            );
            for (sid, gen) in gens.iter().enumerate() {
                if sid != victim_sid {
                    assert_eq!(*gen, 0, "shard {sid} was rewritten needlessly");
                }
            }
        }
        let store = LogStore::recover(&dir).unwrap();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(
                store
                    .get_latest_committed("t", *id)
                    .unwrap()
                    .get_int("balance"),
                Some(i as i64),
                "row {i} after the per-shard rewrite + recovery"
            );
        }
        assert_eq!(store.last_commit_ts(), Some(Timestamp(1)));
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }
}
