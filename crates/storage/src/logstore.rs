//! An append-only, log-structured storage backend.
//!
//! Where [`crate::store::MvStore`] keeps each row's versions in a chain
//! owned by that row, `LogStore` writes every versioned record into a
//! global sequence of **log segments** in arrival order and finds them
//! again through a **per-table hash index** mapping `row id → record
//! positions` (oldest first).  A row's "version chain" is therefore a
//! *view* computed from index pointers — the same visibility rules as the
//! chain store, read off a different representation, which is exactly the
//! point: the Table 3/4 isolation verdicts must not care.
//!
//! Mechanics:
//!
//! * **append path** — `insert`/`update`/`delete` append one record
//!   (table, row id, writer, payload-or-tombstone) to the open segment;
//!   a segment that reaches [`LogStoreConfig::segment_records`] is sealed
//!   and a fresh one opened.  Data records are never rewritten in place;
//! * **commit/abort** — commit resolves the writer's pending records to a
//!   commit timestamp (the in-memory equivalent of appending a COMMIT
//!   record and consulting it on reads); abort unlinks the writer's
//!   records from the index, leaving dead space in the log;
//! * **compaction** — when dead (aborted) records cross
//!   [`LogStoreConfig::compact_watermark`], the segments are rewritten
//!   without them and the index repointed, synchronously on the aborting
//!   caller's thread — there is no background thread to coordinate with.
//!   Committed versions are *never* dropped: historical reads at arbitrary
//!   timestamps stay answerable;
//! * **spill** (optional) — with [`LogStoreConfig::spill`] on, sealing a
//!   segment writes its row payloads to an unlinked temp file and keeps
//!   only (offset, length) in memory; reads decode on demand.  Commit
//!   state, the index, and tombstones stay in memory, so only payload
//!   bytes leave the heap.  The unlinked file vanishes with the process.
//!
//! Concurrency: one `RwLock` around the whole log + index.  This is
//! deliberately the simple layout — the backend exists to prove the
//! isolation schedulers are storage-independent, and the scaling bench
//! records what the single-lock log costs next to the sharded chain store.

use crate::backend::{sort_scan_output, ScanView, StorageBackend};
use crate::predicate::{KeyInterval, RowPredicate};
use crate::row::{Row, RowId};
use crate::snapshot::Snapshot;
use crate::store::{StorageError, TableName, WriteKind};
use crate::timestamp::{Timestamp, TxnToken};
use crate::value::ColumnValue;
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::fs::File;
use std::sync::Arc;

/// Tuning knobs of the log-structured backend.
#[derive(Clone, Copy, Debug)]
pub struct LogStoreConfig {
    /// Records per segment; a full segment is sealed (and spilled, if
    /// spilling is on) and a new one opened.  Clamped to at least 1.
    pub segment_records: usize,
    /// Dead (aborted) records tolerated before the log is compacted.
    /// Clamped to at least 1 — every abort checks the watermark, so
    /// compaction is always caller-driven, never a background task.
    pub compact_watermark: usize,
    /// Spill sealed segments' row payloads to an unlinked temporary file
    /// instead of keeping them on the heap.
    pub spill: bool,
}

impl Default for LogStoreConfig {
    fn default() -> Self {
        LogStoreConfig {
            segment_records: 1024,
            compact_watermark: 4096,
            spill: false,
        }
    }
}

/// Position of a record: (segment index, offset within segment).
type RecordPtr = (usize, usize);

/// Where a record's row contents live.
enum Payload {
    /// On the heap; `None` is a tombstone (tombstones never spill).
    Inline(Option<Row>),
    /// Encoded in the spill file at `offset..offset + len`.
    Spilled { offset: u64, len: u32 },
}

/// One versioned record in the log.
struct LogRecord {
    table: Arc<str>,
    row: RowId,
    writer: TxnToken,
    /// Set when the writer commits; `None` while pending.
    commit_ts: Option<Timestamp>,
    /// Unlinked from the index by abort; reclaimed by compaction.
    aborted: bool,
    /// The record's integer value in the table's indexed column, stamped
    /// at append time (or backfilled by `create_index`) so abort can
    /// unhook the ordered index without decoding spilled payloads.
    index_key: Option<i64>,
    payload: Payload,
}

/// A run of records; full segments are sealed and never appended to again.
#[derive(Default)]
struct Segment {
    records: Vec<LogRecord>,
    sealed: bool,
}

/// Per-table state: interned name, the row-id allocator, and the hash
/// index from row id to that row's record positions in append order.
struct TableIndex {
    name: Arc<str>,
    next_row_id: u64,
    /// Row id → positions of its live (non-aborted) records, oldest first.
    /// An entry outlives its records: a row whose only version was aborted
    /// keeps an empty slot, exactly like an empty version chain.
    rows: HashMap<RowId, Vec<RecordPtr>>,
    /// The ordered secondary index's column, once registered.
    indexed_column: Option<String>,
    /// Ordered index: `(key, row id) → refcount` over every live record
    /// that carries that key — committed and uncommitted alike, so it can
    /// only over-approximate any one visibility rule.  `scan_range`
    /// re-checks the picked version precisely.
    ordered: BTreeMap<(i64, RowId), usize>,
}

/// The spill file: append-only, unlinked at creation so the OS reclaims it
/// when the store is dropped (or the process dies).
struct SpillFile {
    file: File,
    len: u64,
}

#[derive(Default)]
struct LogInner {
    /// Table name → index, sorted so `tables()` is deterministic.
    tables: BTreeMap<Arc<str>, TableIndex>,
    segments: Vec<Segment>,
    /// In-flight write sets, in write order (the input to commit, abort,
    /// and First-Committer-Wins).
    write_sets: BTreeMap<TxnToken, Vec<(Arc<str>, RowId, WriteKind)>>,
    /// Positions of each in-flight writer's uncommitted records.
    pending: HashMap<TxnToken, Vec<RecordPtr>>,
    /// Aborted records awaiting compaction.
    dead: usize,
    /// Live (non-aborted) records — the backend's version count.
    live: usize,
    spill: Option<SpillFile>,
}

/// The append-only log-structured store.  See the module docs for the
/// design; see [`StorageBackend`] for the semantics every method must
/// share with the chain store.
pub struct LogStore {
    config: LogStoreConfig,
    inner: RwLock<LogInner>,
}

impl Default for LogStore {
    fn default() -> Self {
        Self::with_config(LogStoreConfig::default())
    }
}

impl LogStore {
    /// An empty log store with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty log store with explicit tuning knobs.
    pub fn with_config(config: LogStoreConfig) -> Self {
        LogStore {
            config: LogStoreConfig {
                segment_records: config.segment_records.max(1),
                compact_watermark: config.compact_watermark.max(1),
                spill: config.spill,
            },
            inner: RwLock::new(LogInner::default()),
        }
    }

    /// The configuration this store runs with.
    pub fn config(&self) -> LogStoreConfig {
        self.config
    }

    /// Number of segments currently in the log (sealed + open).
    pub fn segment_count(&self) -> usize {
        self.inner.read().segments.len()
    }

    /// Dead (aborted, not yet compacted) records currently in the log.
    pub fn dead_record_count(&self) -> usize {
        self.inner.read().dead
    }

    /// Bytes written to the spill file so far (0 when spilling is off).
    pub fn spilled_bytes(&self) -> u64 {
        self.inner.read().spill.as_ref().map_or(0, |s| s.len)
    }

    // ------------------------------------------------------------------
    // Append path.
    // ------------------------------------------------------------------

    fn append(
        &self,
        inner: &mut LogInner,
        table: Arc<str>,
        row: RowId,
        writer: TxnToken,
        payload: Option<Row>,
        kind: WriteKind,
    ) {
        let index_key = inner
            .tables
            .get(&*table)
            .and_then(|t| t.indexed_column.as_deref())
            .and_then(|col| payload.as_ref().and_then(|r| r.get_int(col)));
        if inner
            .segments
            .last()
            .is_none_or(|s| s.sealed || s.records.len() >= self.config.segment_records)
        {
            self.seal_last(inner);
            inner.segments.push(Segment::default());
        }
        let seg = inner.segments.len() - 1;
        let segment = inner
            .segments
            .last_mut()
            .expect("open segment just ensured");
        let ptr = (seg, segment.records.len());
        segment.records.push(LogRecord {
            table: Arc::clone(&table),
            row,
            writer,
            commit_ts: None,
            aborted: false,
            index_key,
            payload: Payload::Inline(payload),
        });
        inner.live += 1;
        let tindex = inner
            .tables
            .get_mut(&*table)
            .expect("append targets an interned table");
        tindex.rows.entry(row).or_default().push(ptr);
        if let Some(key) = index_key {
            *tindex.ordered.entry((key, row)).or_insert(0) += 1;
        }
        inner.pending.entry(writer).or_default().push(ptr);
        inner
            .write_sets
            .entry(writer)
            .or_default()
            .push((table, row, kind));
    }

    /// Seal the open segment (if any) and, with spilling on, move its row
    /// payloads out to the spill file.
    fn seal_last(&self, inner: &mut LogInner) {
        let Some(last) = inner.segments.len().checked_sub(1) else {
            return;
        };
        if inner.segments[last].sealed {
            return;
        }
        inner.segments[last].sealed = true;
        self.spill_segment(inner, last);
    }

    /// Move a sealed segment's inline row payloads out to the spill file
    /// (no-op unless spilling is enabled).
    fn spill_segment(&self, inner: &mut LogInner, seg: usize) {
        // Spilling relies on positioned reads (`spill_read`); where those
        // are unavailable the payloads simply stay inline.
        if !self.config.spill || cfg!(not(unix)) {
            return;
        }
        // Encode first, then borrow the spill file mutably: a record's
        // payload moves to `Spilled` only once its bytes are durably in
        // the file buffer.
        for offset in 0..inner.segments[seg].records.len() {
            let encoded = match &inner.segments[seg].records[offset].payload {
                Payload::Inline(Some(row)) => encode_row(row),
                // Tombstones and already-spilled payloads stay put.
                Payload::Inline(None) | Payload::Spilled { .. } => continue,
            };
            let Some(at) = spill_write(inner, &encoded) else {
                // The temp file could not be created/written (exotic
                // environments); keep the payload inline — spilling is an
                // optimisation, never a correctness requirement.
                continue;
            };
            inner.segments[seg].records[offset].payload = Payload::Spilled {
                offset: at,
                len: encoded.len() as u32,
            };
        }
    }

    fn intern(&self, inner: &mut LogInner, table: &str) -> Arc<str> {
        if let Some(index) = inner.tables.get(table) {
            return Arc::clone(&index.name);
        }
        let name: Arc<str> = Arc::from(table);
        inner.tables.insert(
            Arc::clone(&name),
            TableIndex {
                name: Arc::clone(&name),
                next_row_id: 0,
                rows: HashMap::new(),
                indexed_column: None,
                ordered: BTreeMap::new(),
            },
        );
        name
    }

    // ------------------------------------------------------------------
    // Read path: a row's records viewed as a version chain.
    // ------------------------------------------------------------------

    fn read_row<F>(&self, table: &str, id: RowId, pick: F) -> Option<Row>
    where
        F: Fn(&LogInner, &[RecordPtr]) -> Option<Row>,
    {
        let inner = self.inner.read();
        let ptrs = inner.tables.get(table)?.rows.get(&id)?;
        pick(&inner, ptrs)
    }

    fn scan<F>(&self, predicate: &RowPredicate, pick: F) -> Vec<(RowId, Row)>
    where
        F: Fn(&LogInner, &[RecordPtr]) -> Option<Row>,
    {
        let inner = self.inner.read();
        let Some(index) = inner.tables.get(predicate.table.as_str()) else {
            return Vec::new();
        };
        let mut rows: Vec<(RowId, Row)> = index
            .rows
            .iter()
            .filter_map(|(id, ptrs)| {
                pick(&inner, ptrs)
                    .filter(|row| predicate.matches(&predicate.table, row))
                    .map(|row| (*id, row))
            })
            .collect();
        sort_scan_output(index.indexed_column.as_deref(), &mut rows);
        rows
    }

    /// Compaction: rewrite the segments without dead records and repoint
    /// the index and pending sets.  Runs synchronously under the write
    /// lock; spilled payload bytes stay where they are in the spill file
    /// (the file is append-only garbage-tolerant — its size is bounded by
    /// total bytes ever sealed, and it lives unlinked in tmp).
    fn compact(&self, inner: &mut LogInner) {
        let old_segments = std::mem::take(&mut inner.segments);
        let mut remap: HashMap<RecordPtr, RecordPtr> = HashMap::new();
        let mut segments: Vec<Segment> = Vec::new();
        for (old_seg, segment) in old_segments.into_iter().enumerate() {
            for (old_off, record) in segment.records.into_iter().enumerate() {
                if record.aborted {
                    continue;
                }
                if segments
                    .last()
                    .is_none_or(|s| s.records.len() >= self.config.segment_records)
                {
                    if let Some(full) = segments.last_mut() {
                        full.sealed = true;
                    }
                    segments.push(Segment::default());
                }
                let seg = segments.len() - 1;
                let target = segments.last_mut().expect("open segment just ensured");
                remap.insert((old_seg, old_off), (seg, target.records.len()));
                target.records.push(record);
            }
        }
        inner.segments = segments;
        inner.dead = 0;
        let repoint = |ptrs: &mut Vec<RecordPtr>| {
            for ptr in ptrs.iter_mut() {
                *ptr = *remap
                    .get(ptr)
                    .expect("index pointer names a record that compaction dropped — only aborted (unindexed) records may be dropped");
            }
        };
        for index in inner.tables.values_mut() {
            for ptrs in index.rows.values_mut() {
                repoint(ptrs);
            }
        }
        for ptrs in inner.pending.values_mut() {
            repoint(ptrs);
        }
        // Segments sealed by the repack above never pass through
        // `seal_last`, so spill their surviving inline payloads here —
        // otherwise records carried over from the formerly-open segment
        // would stay on the heap forever and spill mode would silently
        // stop bounding memory after the first compaction.
        for seg in 0..inner.segments.len() {
            if inner.segments[seg].sealed {
                self.spill_segment(inner, seg);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Record access helpers (free functions so closures can borrow `LogInner`
// immutably while the store's methods hold the lock guard).
// ---------------------------------------------------------------------

fn record<'a>(inner: &'a LogInner, ptr: &RecordPtr) -> &'a LogRecord {
    &inner.segments[ptr.0].records[ptr.1]
}

fn payload_row(inner: &LogInner, rec: &LogRecord) -> Option<Row> {
    match &rec.payload {
        Payload::Inline(row) => row.clone(),
        Payload::Spilled { offset, len } => {
            let bytes = spill_read(inner, *offset, *len)
                .expect("spilled payload must be readable back from the spill file");
            Some(decode_row(&bytes).expect("spilled payload bytes must decode as a row"))
        }
    }
}

fn is_tombstone(rec: &LogRecord) -> bool {
    matches!(rec.payload, Payload::Inline(None))
}

/// The most recent record regardless of commit state (dirty read).
fn latest_any(inner: &LogInner, ptrs: &[RecordPtr]) -> Option<Row> {
    ptrs.last()
        .and_then(|p| payload_row(inner, record(inner, p)))
}

/// The most recent committed record.
fn latest_committed(inner: &LogInner, ptrs: &[RecordPtr]) -> Option<Row> {
    ptrs.iter()
        .rev()
        .map(|p| record(inner, p))
        .find(|r| r.commit_ts.is_some())
        .and_then(|r| payload_row(inner, r))
}

/// The most recent record committed at or before `ts`.
fn committed_as_of<'a>(
    inner: &'a LogInner,
    ptrs: &[RecordPtr],
    ts: Timestamp,
) -> Option<&'a LogRecord> {
    ptrs.iter()
        .rev()
        .map(|p| record(inner, p))
        .find(|r| matches!(r.commit_ts, Some(c) if c <= ts))
}

/// Snapshot Isolation visibility (own uncommitted write first).
fn visible_for(
    inner: &LogInner,
    ptrs: &[RecordPtr],
    reader: TxnToken,
    start_ts: Timestamp,
) -> Option<Row> {
    ptrs.iter()
        .rev()
        .map(|p| record(inner, p))
        .find(|r| r.writer == reader && r.commit_ts.is_none())
        .or_else(|| committed_as_of(inner, ptrs, start_ts))
        .and_then(|r| payload_row(inner, r))
}

impl StorageBackend for LogStore {
    fn backend_name(&self) -> &'static str {
        "logstore"
    }

    fn create_table(&self, table: &str) {
        let mut inner = self.inner.write();
        self.intern(&mut inner, table);
    }

    fn tables(&self) -> Vec<TableName> {
        self.inner
            .read()
            .tables
            .keys()
            .map(|k| k.to_string())
            .collect()
    }

    fn row_ids(&self, table: &str) -> Vec<RowId> {
        let inner = self.inner.read();
        let mut ids: Vec<RowId> = inner
            .tables
            .get(table)
            .map(|t| t.rows.keys().copied().collect())
            .unwrap_or_default();
        ids.sort_unstable();
        ids
    }

    fn insert(&self, table: &str, writer: TxnToken, row: Row) -> RowId {
        let mut inner = self.inner.write();
        let name = self.intern(&mut inner, table);
        let index = inner.tables.get_mut(&*name).expect("table just interned");
        let id = RowId(index.next_row_id);
        index.next_row_id += 1;
        self.append(&mut inner, name, id, writer, Some(row), WriteKind::Insert);
        id
    }

    fn update(
        &self,
        table: &str,
        writer: TxnToken,
        id: RowId,
        row: Row,
    ) -> Result<(), StorageError> {
        let mut inner = self.inner.write();
        let name = match inner.tables.get(table) {
            Some(index) => Arc::clone(&index.name),
            None => return Err(StorageError::NoSuchTable(table.to_string())),
        };
        if !inner.tables[&*name].rows.contains_key(&id) {
            return Err(StorageError::NoSuchRow(table.to_string(), id));
        }
        self.append(&mut inner, name, id, writer, Some(row), WriteKind::Update);
        Ok(())
    }

    fn delete(&self, table: &str, writer: TxnToken, id: RowId) -> Result<(), StorageError> {
        let mut inner = self.inner.write();
        let name = match inner.tables.get(table) {
            Some(index) => Arc::clone(&index.name),
            None => return Err(StorageError::NoSuchTable(table.to_string())),
        };
        if !inner.tables[&*name].rows.contains_key(&id) {
            return Err(StorageError::NoSuchRow(table.to_string(), id));
        }
        self.append(&mut inner, name, id, writer, None, WriteKind::Delete);
        Ok(())
    }

    fn get_latest_any(&self, table: &str, id: RowId) -> Option<Row> {
        self.read_row(table, id, latest_any)
    }

    fn get_latest_committed(&self, table: &str, id: RowId) -> Option<Row> {
        self.read_row(table, id, latest_committed)
    }

    fn get_committed_as_of(&self, table: &str, id: RowId, ts: Timestamp) -> Option<Row> {
        self.read_row(table, id, |inner, ptrs| {
            committed_as_of(inner, ptrs, ts).and_then(|r| payload_row(inner, r))
        })
    }

    fn get_visible(
        &self,
        table: &str,
        id: RowId,
        reader: TxnToken,
        start_ts: Timestamp,
    ) -> Option<Row> {
        self.read_row(table, id, |inner, ptrs| {
            visible_for(inner, ptrs, reader, start_ts)
        })
    }

    fn scan_latest_any(&self, predicate: &RowPredicate) -> Vec<(RowId, Row)> {
        self.scan(predicate, latest_any)
    }

    fn scan_latest_committed(&self, predicate: &RowPredicate) -> Vec<(RowId, Row)> {
        self.scan(predicate, latest_committed)
    }

    fn scan_committed_as_of(&self, predicate: &RowPredicate, ts: Timestamp) -> Vec<(RowId, Row)> {
        self.scan(predicate, |inner, ptrs| {
            committed_as_of(inner, ptrs, ts).and_then(|r| payload_row(inner, r))
        })
    }

    fn scan_visible(
        &self,
        predicate: &RowPredicate,
        reader: TxnToken,
        start_ts: Timestamp,
    ) -> Vec<(RowId, Row)> {
        self.scan(predicate, |inner, ptrs| {
            visible_for(inner, ptrs, reader, start_ts)
        })
    }

    fn create_index(&self, table: &str, column: &str) {
        let mut inner = self.inner.write();
        let name = self.intern(&mut inner, table);
        if inner.tables[&*name].indexed_column.as_deref() == Some(column) {
            return;
        }
        // Backfill: stamp every live record with its key in the new
        // column, then rebuild the ordered map from those stamps.
        let ptrs: Vec<RecordPtr> = inner.tables[&*name]
            .rows
            .values()
            .flat_map(|v| v.iter().copied())
            .collect();
        let mut ordered: BTreeMap<(i64, RowId), usize> = BTreeMap::new();
        let mut stamped: Vec<(RecordPtr, Option<i64>)> = Vec::with_capacity(ptrs.len());
        for ptr in ptrs {
            let rec = record(&inner, &ptr);
            let key = payload_row(&inner, rec).and_then(|r| r.get_int(column));
            if let Some(key) = key {
                *ordered.entry((key, rec.row)).or_insert(0) += 1;
            }
            stamped.push((ptr, key));
        }
        for (ptr, key) in stamped {
            inner.segments[ptr.0].records[ptr.1].index_key = key;
        }
        let tindex = inner.tables.get_mut(&*name).expect("table just interned");
        tindex.indexed_column = Some(column.to_string());
        tindex.ordered = ordered;
    }

    fn indexed_column(&self, table: &str) -> Option<String> {
        self.inner
            .read()
            .tables
            .get(table)
            .and_then(|t| t.indexed_column.clone())
    }

    fn scan_range(
        &self,
        table: &str,
        column: &str,
        range: &KeyInterval,
        view: ScanView,
    ) -> Vec<(RowId, Row)> {
        if range.is_int_empty() {
            return Vec::new();
        }
        let inner = self.inner.read();
        let Some(index) = inner.tables.get(table) else {
            return Vec::new();
        };
        let pick = |ptrs: &[RecordPtr]| -> Option<Row> {
            match view {
                ScanView::LatestAny => latest_any(&inner, ptrs),
                ScanView::LatestCommitted => latest_committed(&inner, ptrs),
                ScanView::CommittedAsOf(ts) => {
                    committed_as_of(&inner, ptrs, ts).and_then(|r| payload_row(&inner, r))
                }
                ScanView::Visible { reader, start_ts } => {
                    visible_for(&inner, ptrs, reader, start_ts)
                }
            }
        };
        let mut rows: Vec<(i64, RowId, Row)> = Vec::new();
        if index.indexed_column.as_deref() == Some(column) {
            // The ordered index covers every live record, so the probe can
            // only over-approximate; the picked version is re-checked.
            let lo = (range.lo().unwrap_or(i64::MIN), RowId(0));
            let hi = (range.hi().unwrap_or(i64::MAX), RowId(u64::MAX));
            let mut visited = HashSet::new();
            for &(_, id) in index.ordered.range(lo..=hi).map(|(entry, _)| entry) {
                if !visited.insert(id) {
                    continue;
                }
                if let Some(row) = index.rows.get(&id).and_then(|ptrs| pick(ptrs)) {
                    if let Some(key) = row.get_int(column) {
                        if range.contains(key) {
                            rows.push((key, id, row));
                        }
                    }
                }
            }
        } else {
            for (id, ptrs) in &index.rows {
                if let Some(row) = pick(ptrs) {
                    if let Some(key) = row.get_int(column) {
                        if range.contains(key) {
                            rows.push((key, *id, row));
                        }
                    }
                }
            }
        }
        rows.sort_unstable_by_key(|(key, id, _)| (*key, *id));
        rows.into_iter().map(|(_, id, row)| (id, row)).collect()
    }

    fn writes_of(&self, writer: TxnToken) -> Vec<(TableName, RowId, WriteKind)> {
        self.inner
            .read()
            .write_sets
            .get(&writer)
            .map(|writes| {
                writes
                    .iter()
                    .map(|(table, id, kind)| (table.to_string(), *id, *kind))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn first_committer_conflict(
        &self,
        writer: TxnToken,
        start_ts: Timestamp,
    ) -> Option<(TableName, RowId)> {
        let inner = self.inner.read();
        let writes = inner.write_sets.get(&writer)?;
        for (table, id, _) in writes {
            let conflict = inner
                .tables
                .get(&**table)
                .and_then(|t| t.rows.get(id))
                .expect("write-set entry names an indexed row — the append path indexes before recording")
                .iter()
                .map(|p| record(&inner, p))
                .any(|r| r.writer != writer && matches!(r.commit_ts, Some(c) if c > start_ts));
            if conflict {
                return Some((table.to_string(), *id));
            }
        }
        None
    }

    fn has_foreign_uncommitted_on_writes(&self, writer: TxnToken) -> bool {
        let inner = self.inner.read();
        let Some(writes) = inner.write_sets.get(&writer) else {
            return false;
        };
        writes.iter().any(|(table, id, _)| {
            inner
                .tables
                .get(&**table)
                .and_then(|t| t.rows.get(id))
                .expect("write-set entry names an indexed row — the append path indexes before recording")
                .iter()
                .map(|p| record(&inner, p))
                .any(|r| r.writer != writer && r.commit_ts.is_none())
        })
    }

    fn commit(&self, writer: TxnToken, ts: Timestamp) {
        let mut inner = self.inner.write();
        inner.write_sets.remove(&writer);
        let pending = inner.pending.remove(&writer).unwrap_or_default();
        for ptr in pending {
            let rec = &mut inner.segments[ptr.0].records[ptr.1];
            assert_eq!(
                rec.writer, writer,
                "commit({writer}): pending pointer resolves to a record owned by {} — the pending set and the log disagree",
                rec.writer,
            );
            assert!(
                rec.commit_ts.is_none(),
                "commit({writer}): record at {ptr:?} is already committed at {:?} — a version must be stamped exactly once",
                rec.commit_ts,
            );
            rec.commit_ts = Some(ts);
        }
    }

    fn abort(&self, writer: TxnToken) {
        let mut inner = self.inner.write();
        inner.write_sets.remove(&writer);
        let pending = inner.pending.remove(&writer).unwrap_or_default();
        for ptr in &pending {
            let rec = &mut inner.segments[ptr.0].records[ptr.1];
            assert!(
                rec.commit_ts.is_none(),
                "abort({writer}): record at {ptr:?} was already committed — commit and abort are mutually exclusive",
            );
            rec.aborted = true;
            // Unlink from the row's index entry; the (possibly empty)
            // entry itself stays, like an empty version chain.
            let table = Arc::clone(&rec.table);
            let row = rec.row;
            let index_key = rec.index_key;
            let tindex = inner
                .tables
                .get_mut(&*table)
                .expect("aborting an indexed record — the append path indexes before recording");
            tindex
                .rows
                .get_mut(&row)
                .expect("aborting an indexed record — the append path indexes before recording")
                .retain(|p| p != ptr);
            if let Some(key) = index_key {
                if let Some(count) = tindex.ordered.get_mut(&(key, row)) {
                    *count -= 1;
                    if *count == 0 {
                        tindex.ordered.remove(&(key, row));
                    }
                }
            }
            inner.dead += 1;
            inner.live -= 1;
        }
        if inner.dead >= self.config.compact_watermark {
            self.compact(&mut inner);
        }
    }

    fn snapshot(&self, ts: Timestamp) -> Snapshot<'_> {
        Snapshot::new(self, ts)
    }

    fn committed_row_count(&self, table: &str) -> usize {
        let inner = self.inner.read();
        let Some(index) = inner.tables.get(table) else {
            return 0;
        };
        index
            .rows
            .values()
            .filter(|ptrs| {
                ptrs.iter()
                    .rev()
                    .map(|p| record(&inner, p))
                    .find(|r| r.commit_ts.is_some())
                    .is_some_and(|r| !is_tombstone(r))
            })
            .count()
    }

    fn version_count(&self) -> usize {
        self.inner.read().live
    }
}

impl fmt::Debug for LogStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("LogStore")
            .field("segments", &inner.segments.len())
            .field("live", &inner.live)
            .field("dead", &inner.dead)
            .field("tables", &inner.tables.keys().collect::<Vec<_>>())
            .field("spill", &self.config.spill)
            .finish()
    }
}

// ---------------------------------------------------------------------
// Spill file plumbing.
// ---------------------------------------------------------------------

/// Append `bytes` to the spill file (creating it on first use), returning
/// the offset they start at, or `None` if the file cannot be created or
/// written (the caller then keeps the payload inline).
#[cfg(unix)]
fn spill_write(inner: &mut LogInner, bytes: &[u8]) -> Option<u64> {
    use std::os::unix::fs::FileExt;
    if inner.spill.is_none() {
        inner.spill = create_spill_file().map(|file| SpillFile { file, len: 0 });
    }
    let spill = inner.spill.as_mut()?;
    // Positioned write at the recorded length, like `spill_read`: a failed
    // or partial write then never desynchronises `len` from where later
    // payloads actually land — the recorded offset stays authoritative.
    spill.file.write_all_at(bytes, spill.len).ok()?;
    let offset = spill.len;
    spill.len += bytes.len() as u64;
    Some(offset)
}

#[cfg(not(unix))]
fn spill_write(_inner: &mut LogInner, _bytes: &[u8]) -> Option<u64> {
    // Spilling uses positioned IO; off unix the payloads stay inline
    // (`spill_segment` never runs there, this is just the symmetric stub).
    None
}

/// Create the unlinked temp file: open, then immediately remove the path,
/// so the data is reclaimed by the OS no matter how the process exits.
fn create_spill_file() -> Option<File> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir();
    let unique = format!(
        "critique-logstore-{}-{}.spill",
        std::process::id(),
        SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
    );
    let path = dir.join(unique);
    let file = File::options()
        .read(true)
        .write(true)
        .create_new(true)
        .open(&path)
        .ok()?;
    // Unlink immediately; the open handle keeps the inode alive.
    let _ = std::fs::remove_file(&path);
    Some(file)
}

#[cfg(unix)]
fn spill_read(inner: &LogInner, offset: u64, len: u32) -> Option<Vec<u8>> {
    use std::os::unix::fs::FileExt;
    let spill = inner.spill.as_ref()?;
    let mut buf = vec![0u8; len as usize];
    spill.file.read_exact_at(&mut buf, offset).ok()?;
    Some(buf)
}

#[cfg(not(unix))]
fn spill_read(_inner: &LogInner, _offset: u64, _len: u32) -> Option<Vec<u8>> {
    // Spilling uses positioned reads; off unix the payloads simply stay
    // inline (see `seal_last` — a failed spill keeps the inline copy).
    None
}

// ---------------------------------------------------------------------
// Row codec (the offline serde shim does not serialise, so the spill
// format is hand-rolled: length-prefixed column names and tagged values).
// ---------------------------------------------------------------------

fn encode_row(row: &Row) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(row.len() as u32).to_le_bytes());
    for (name, value) in row.columns() {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        match value {
            ColumnValue::Int(v) => {
                out.push(0);
                out.extend_from_slice(&v.to_le_bytes());
            }
            ColumnValue::Text(s) => {
                out.push(1);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            ColumnValue::Bool(b) => {
                out.push(2);
                out.push(u8::from(*b));
            }
            ColumnValue::Null => out.push(3),
        }
    }
    out
}

fn decode_row(bytes: &[u8]) -> Option<Row> {
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
        let slice = bytes.get(*at..*at + n)?;
        *at += n;
        Some(slice)
    };
    let take_u32 =
        |at: &mut usize| -> Option<u32> { Some(u32::from_le_bytes(take(at, 4)?.try_into().ok()?)) };
    let ncols = take_u32(&mut at)?;
    let mut row = Row::new();
    for _ in 0..ncols {
        let name_len = take_u32(&mut at)? as usize;
        let name = std::str::from_utf8(take(&mut at, name_len)?)
            .ok()?
            .to_string();
        let tag = *take(&mut at, 1)?.first()?;
        match tag {
            0 => {
                let v = i64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?);
                row.set(&name, v);
            }
            1 => {
                let len = take_u32(&mut at)? as usize;
                let s = std::str::from_utf8(take(&mut at, len)?).ok()?.to_string();
                row.set(&name, s.as_str());
            }
            2 => {
                let b = *take(&mut at, 1)?.first()? != 0;
                row.set(&name, b);
            }
            3 => row.set(&name, ColumnValue::Null),
            _ => return None,
        }
    }
    (at == bytes.len()).then_some(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Condition, RowPredicate};

    fn balance_row(v: i64) -> Row {
        Row::new().with("balance", v)
    }

    fn tiny(spill: bool) -> LogStore {
        LogStore::with_config(LogStoreConfig {
            segment_records: 4,
            compact_watermark: 3,
            spill,
        })
    }

    #[test]
    fn insert_commit_read_cycle() {
        let store = LogStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(50));
        assert!(store.get_latest_committed("accounts", id).is_none());
        assert_eq!(
            store
                .get_latest_any("accounts", id)
                .unwrap()
                .get_int("balance"),
            Some(50)
        );
        store.commit(TxnToken(1), Timestamp(1));
        assert_eq!(
            store
                .get_latest_committed("accounts", id)
                .unwrap()
                .get_int("balance"),
            Some(50)
        );
        assert_eq!(store.version_count(), 1);
        assert_eq!(store.committed_row_count("accounts"), 1);
    }

    #[test]
    fn update_requires_existing_row_and_table() {
        let store = LogStore::new();
        store.create_table("accounts");
        let err = store
            .update("accounts", TxnToken(1), RowId(99), balance_row(1))
            .unwrap_err();
        assert!(matches!(err, StorageError::NoSuchRow(_, _)));
        let err = store
            .update("missing", TxnToken(1), RowId(0), balance_row(1))
            .unwrap_err();
        assert!(matches!(err, StorageError::NoSuchTable(_)));
        let err = store.delete("missing", TxnToken(1), RowId(0)).unwrap_err();
        assert!(matches!(err, StorageError::NoSuchTable(_)));
    }

    #[test]
    fn abort_unlinks_versions_and_keeps_the_row_slot() {
        let store = LogStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(100));
        store.commit(TxnToken(1), Timestamp(1));
        store
            .update("accounts", TxnToken(2), id, balance_row(999))
            .unwrap();
        store.abort(TxnToken(2));
        assert_eq!(
            store
                .get_latest_any("accounts", id)
                .unwrap()
                .get_int("balance"),
            Some(100)
        );
        assert!(store.writes_of(TxnToken(2)).is_empty());
        assert_eq!(store.version_count(), 1);

        // A row whose only version aborted keeps its (empty) slot: a later
        // update through the same id succeeds, exactly like an empty chain.
        let ghost = store.insert("accounts", TxnToken(3), balance_row(5));
        store.abort(TxnToken(3));
        assert!(store.get_latest_any("accounts", ghost).is_none());
        assert!(store.row_ids("accounts").contains(&ghost));
        store
            .update("accounts", TxnToken(4), ghost, balance_row(6))
            .unwrap();
        store.commit(TxnToken(4), Timestamp(2));
        assert_eq!(
            store
                .get_latest_committed("accounts", ghost)
                .unwrap()
                .get_int("balance"),
            Some(6)
        );
    }

    #[test]
    fn compaction_reclaims_aborted_records_and_preserves_reads() {
        let store = tiny(false);
        let id = store.insert("t", TxnToken(1), balance_row(1));
        store.commit(TxnToken(1), Timestamp(1));
        // Burn through aborted versions until the watermark trips.
        for round in 0..5u64 {
            let txn = TxnToken(10 + round);
            store.update("t", txn, id, balance_row(-1)).unwrap();
            store.update("t", txn, id, balance_row(-2)).unwrap();
            store.abort(txn);
        }
        assert!(
            store.dead_record_count() < 3,
            "watermark should have compacted: {} dead",
            store.dead_record_count()
        );
        store.update("t", TxnToken(99), id, balance_row(2)).unwrap();
        store.commit(TxnToken(99), Timestamp(5));
        assert_eq!(
            store
                .get_latest_committed("t", id)
                .unwrap()
                .get_int("balance"),
            Some(2)
        );
        // Historical reads survive compaction.
        assert_eq!(
            store
                .get_committed_as_of("t", id, Timestamp(1))
                .unwrap()
                .get_int("balance"),
            Some(1)
        );
        assert_eq!(store.version_count(), 2);
    }

    #[test]
    fn commit_spanning_segments_and_pending_remap() {
        let store = tiny(false);
        // One transaction writes enough to span several 4-record segments,
        // while another aborts in between to force a compaction that must
        // remap the first transaction's pending pointers.
        let id = store.insert("t", TxnToken(1), balance_row(0));
        store.commit(TxnToken(1), Timestamp(1));
        for i in 0..6 {
            store.update("t", TxnToken(2), id, balance_row(i)).unwrap();
        }
        for round in 0..3u64 {
            let txn = TxnToken(50 + round);
            store.update("t", txn, id, balance_row(-1)).unwrap();
            store.abort(txn); // third abort trips the watermark
        }
        assert!(store.segment_count() >= 1);
        store.commit(TxnToken(2), Timestamp(2));
        assert_eq!(
            store
                .get_latest_committed("t", id)
                .unwrap()
                .get_int("balance"),
            Some(5)
        );
        assert_eq!(store.version_count(), 7);
    }

    #[test]
    fn snapshot_and_predicate_scans() {
        let store = tiny(false);
        let active = RowPredicate::new("employees", Condition::eq("active", true));
        let e1 = store.insert("employees", TxnToken(1), Row::new().with("active", true));
        store.insert("employees", TxnToken(1), Row::new().with("active", false));
        store.commit(TxnToken(1), Timestamp(1));
        store.insert("employees", TxnToken(2), Row::new().with("active", true));

        let committed = store.scan_latest_committed(&active);
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].0, e1);
        assert_eq!(store.scan_latest_any(&active).len(), 2);
        assert_eq!(
            store.scan_visible(&active, TxnToken(3), Timestamp(1)).len(),
            1
        );
        assert_eq!(
            store.scan_visible(&active, TxnToken(2), Timestamp(1)).len(),
            2
        );

        store.commit(TxnToken(2), Timestamp(2));
        let snap1 = store.snapshot(Timestamp(1));
        assert_eq!(snap1.count(&active), 1);
        let snap2 = store.snapshot(Timestamp(2));
        assert_eq!(snap2.count(&active), 2);
    }

    #[test]
    fn first_committer_conflict_detection() {
        let store = LogStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(100));
        store.commit(TxnToken(1), Timestamp(1));
        store
            .update("accounts", TxnToken(2), id, balance_row(120))
            .unwrap();
        store
            .update("accounts", TxnToken(3), id, balance_row(130))
            .unwrap();
        assert!(store.has_foreign_uncommitted_on_writes(TxnToken(2)));
        store.commit(TxnToken(2), Timestamp(2));
        assert_eq!(
            store.first_committer_conflict(TxnToken(3), Timestamp(1)),
            Some(("accounts".to_string(), id))
        );
        assert!(store
            .first_committer_conflict(TxnToken(9), Timestamp(0))
            .is_none());
    }

    // Spilling is a no-op off unix (no positioned IO), so these two
    // tests only make sense there.
    #[cfg(unix)]
    #[test]
    fn spill_round_trips_sealed_segments() {
        let store = tiny(true);
        let mut ids = Vec::new();
        for i in 0..10 {
            ids.push(
                store.insert(
                    "t",
                    TxnToken(1),
                    Row::new()
                        .with("balance", i)
                        .with("owner", format!("user-{i}").as_str())
                        .with("active", i % 2 == 0)
                        .with("note", ColumnValue::Null),
                ),
            );
        }
        store.commit(TxnToken(1), Timestamp(1));
        // 10 records at 4 per segment: at least two sealed, bytes spilled.
        assert!(store.spilled_bytes() > 0, "sealed segments should spill");
        for (i, id) in ids.iter().enumerate() {
            let row = store.get_latest_committed("t", *id).unwrap();
            assert_eq!(row.get_int("balance"), Some(i as i64));
            assert_eq!(row.get_text("owner"), Some(format!("user-{i}").as_str()));
            assert_eq!(row.get_bool("active"), Some(i % 2 == 0));
            assert!(row.get("note").unwrap().is_null());
        }
        // Tombstones never spill and still read as deletions.
        store.delete("t", TxnToken(2), ids[0]).unwrap();
        store.commit(TxnToken(2), Timestamp(2));
        assert!(store.get_latest_committed("t", ids[0]).is_none());
        assert_eq!(store.committed_row_count("t"), 9);
    }

    #[cfg(unix)]
    #[test]
    fn compaction_spills_carried_over_payloads() {
        let store = LogStore::with_config(LogStoreConfig {
            segment_records: 4,
            compact_watermark: 2,
            spill: true,
        });
        // Three live rows plus one abort fill segment 0; two more live
        // rows land in segment 1 (inline, segment still open).
        let mut ids: Vec<RowId> = (0..3)
            .map(|i| store.insert("t", TxnToken(1), balance_row(i)))
            .collect();
        store
            .update("t", TxnToken(10), ids[0], balance_row(-1))
            .unwrap();
        store.abort(TxnToken(10));
        ids.push(store.insert("t", TxnToken(1), balance_row(3)));
        ids.push(store.insert("t", TxnToken(1), balance_row(4)));
        store.commit(TxnToken(1), Timestamp(1));
        let before = store.spilled_bytes();
        assert!(before > 0, "sealing segment 0 should have spilled");

        // A second abort trips the watermark; the repack packs the five
        // live records as [4 sealed, 1 open], and the inline record
        // carried into the sealed segment must spill there too.
        store
            .update("t", TxnToken(11), ids[1], balance_row(-2))
            .unwrap();
        store.abort(TxnToken(11));
        assert_eq!(
            store.dead_record_count(),
            0,
            "watermark should have compacted"
        );
        assert!(
            store.spilled_bytes() > before,
            "compaction-sealed segments must spill their inline payloads"
        );
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(
                store
                    .get_latest_committed("t", *id)
                    .unwrap()
                    .get_int("balance"),
                Some(i as i64),
                "row {i} after compaction + spill"
            );
        }
    }

    #[test]
    fn ordered_index_backfills_and_tracks_writes() {
        let store = tiny(false);
        // Rows exist before the index: create_index must backfill.
        let a = store.insert("t", TxnToken(1), balance_row(30));
        let b = store.insert("t", TxnToken(1), balance_row(10));
        store.commit(TxnToken(1), Timestamp(1));
        store.create_index("t", "balance");
        assert_eq!(
            StorageBackend::indexed_column(&store, "t").as_deref(),
            Some("balance")
        );

        let all = store.scan_range(
            "t",
            "balance",
            &KeyInterval::everything(),
            ScanView::LatestCommitted,
        );
        assert_eq!(
            all.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![b, a],
            "ascending (key, row id) order"
        );
        let low = store.scan_range(
            "t",
            "balance",
            &KeyInterval::at_most(15),
            ScanView::LatestCommitted,
        );
        assert_eq!(low.len(), 1);
        assert_eq!(low[0].0, b);

        // Maintained through update/abort, including across segment seals.
        store.update("t", TxnToken(2), a, balance_row(5)).unwrap();
        let dirty = store.scan_range(
            "t",
            "balance",
            &KeyInterval::at_most(15),
            ScanView::LatestAny,
        );
        assert_eq!(
            dirty.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![a, b]
        );
        store.abort(TxnToken(2));
        let after = store.scan_range(
            "t",
            "balance",
            &KeyInterval::at_most(15),
            ScanView::LatestAny,
        );
        assert_eq!(after.iter().map(|(id, _)| *id).collect::<Vec<_>>(), vec![b]);

        // Plain scans over an indexed table come back in key order too.
        let pred = RowPredicate::whole_table("t");
        let scanned = store.scan_latest_committed(&pred);
        assert_eq!(
            scanned.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![b, a]
        );
    }

    #[test]
    fn scan_range_survives_compaction_and_spill() {
        let store = LogStore::with_config(LogStoreConfig {
            segment_records: 4,
            compact_watermark: 2,
            spill: true,
        });
        store.create_index("t", "balance");
        let ids: Vec<RowId> = (0..6)
            .map(|i| store.insert("t", TxnToken(1), balance_row(i * 10)))
            .collect();
        store.commit(TxnToken(1), Timestamp(1));
        // Trip compaction with aborted updates.
        for round in 0..2u64 {
            let txn = TxnToken(20 + round);
            store.update("t", txn, ids[0], balance_row(-5)).unwrap();
            store.abort(txn);
        }
        assert_eq!(
            store.dead_record_count(),
            0,
            "watermark should have compacted"
        );
        let mid = store.scan_range(
            "t",
            "balance",
            &KeyInterval::range(Some(10), Some(30)),
            ScanView::LatestCommitted,
        );
        assert_eq!(
            mid.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![ids[1], ids[2], ids[3]]
        );
        // Historical view through the same entry point.
        let asof = store.scan_range(
            "t",
            "balance",
            &KeyInterval::everything(),
            ScanView::CommittedAsOf(Timestamp(1)),
        );
        assert_eq!(asof.len(), 6);
        // Empty interval is empty without touching the index.
        assert!(store
            .scan_range("t", "balance", &KeyInterval::empty(), ScanView::LatestAny)
            .is_empty());
        // Unindexed column falls back to a full pass with the same contract.
        let fallback = store.scan_range(
            "t",
            "missing",
            &KeyInterval::everything(),
            ScanView::LatestAny,
        );
        assert!(fallback.is_empty());
    }

    #[test]
    fn row_codec_round_trips() {
        let row = Row::new()
            .with("a", -42)
            .with("b", "héllo")
            .with("c", true)
            .with("d", ColumnValue::Null);
        assert_eq!(decode_row(&encode_row(&row)), Some(row));
        assert_eq!(decode_row(&encode_row(&Row::new())), Some(Row::new()));
        assert_eq!(decode_row(&[1, 2, 3]), None);
    }

    #[test]
    fn row_ids_are_sequential_per_table_and_sorted() {
        let store = tiny(false);
        let a0 = store.insert("a", TxnToken(1), balance_row(0));
        let b0 = store.insert("b", TxnToken(1), balance_row(0));
        let a1 = store.insert("a", TxnToken(1), balance_row(0));
        assert_eq!((a0, b0, a1), (RowId(0), RowId(0), RowId(1)));
        assert_eq!(store.row_ids("a"), vec![RowId(0), RowId(1)]);
        assert_eq!(store.tables(), vec!["a".to_string(), "b".to_string()]);
        assert!(store.row_ids("missing").is_empty());
    }

    #[test]
    fn debug_and_config_accessors() {
        let store = tiny(true);
        assert_eq!(store.config().segment_records, 4);
        assert_eq!(store.backend_name(), "logstore");
        let text = format!("{store:?}");
        assert!(text.contains("LogStore"));
    }
}
