//! An append-only, log-structured storage backend.
//!
//! Where [`crate::store::MvStore`] keeps each row's versions in a chain
//! owned by that row, `LogStore` writes every versioned record into a
//! global sequence of **log segments** in arrival order and finds them
//! again through a **per-table hash index** mapping `row id → record
//! positions` (oldest first).  A row's "version chain" is therefore a
//! *view* computed from index pointers — the same visibility rules as the
//! chain store, read off a different representation, which is exactly the
//! point: the Table 3/4 isolation verdicts must not care.
//!
//! Mechanics:
//!
//! * **append path** — `insert`/`update`/`delete` append one record
//!   (table, row id, writer, payload-or-tombstone) to the open segment;
//!   a segment that reaches [`LogStoreConfig::segment_records`] is sealed
//!   and a fresh one opened.  Data records are never rewritten in place;
//! * **commit/abort** — commit resolves the writer's pending records to a
//!   commit timestamp (the in-memory equivalent of appending a COMMIT
//!   record and consulting it on reads); abort unlinks the writer's
//!   records from the index, leaving dead space in the log;
//! * **compaction** — when dead (aborted) records cross
//!   [`LogStoreConfig::compact_watermark`], the segments are rewritten
//!   without them and the index repointed, synchronously on the aborting
//!   caller's thread — there is no background thread to coordinate with.
//!   Committed versions are *never* dropped: historical reads at arbitrary
//!   timestamps stay answerable;
//! * **spill** (optional) — with [`LogStoreConfig::spill`] on, sealing a
//!   segment writes its row payloads to an unlinked temp file and keeps
//!   only (offset, length) in memory; reads decode on demand.  Commit
//!   state, the index, and tombstones stay in memory, so only payload
//!   bytes leave the heap.  The unlinked file vanishes with the process.
//!   On unix the spill file uses positioned IO; elsewhere it falls back
//!   to seek-then-read/write behind a cursor mutex — either way
//!   `spilled_bytes` reports what actually left the heap, and a spill
//!   that *fails* is surfaced (counter + panic), never swallowed;
//! * **durability** (optional) — [`LogStore::open_durable`] roots the log
//!   in a directory of write-ahead segment files.  Every mutation appends
//!   a frame (`Begin`/`Write`/`Commit`/`Abort`/`CreateTable`/
//!   `CreateIndex`) through the same row codec the spill file uses;
//!   commit appends its frame and fsyncs (the commit boundary), and an
//!   in-memory segment seal rotates to a fresh file after syncing the old
//!   one (segment seal = durable seal).  [`LogStore::recover`] replays
//!   the frames to rebuild the per-table hash index, the ordered index
//!   views, pending-transaction state, and tombstones, aborts writers
//!   whose commit record never made it, and truncates a torn final frame.
//!   Compaction *rewrites* the file set (a fresh generation holding only
//!   live records plus per-table metadata, manifest-swapped atomically),
//!   so dead records are bounded on disk exactly as they are in memory.
//!
//! Concurrency: one `RwLock` around the whole log + index.  This is
//! deliberately the simple layout — the backend exists to prove the
//! isolation schedulers are storage-independent, and the scaling bench
//! records what the single-lock log costs next to the sharded chain store.

use crate::backend::{sort_scan_output, ScanView, StorageBackend};
use crate::predicate::{KeyInterval, RowPredicate};
use crate::row::{Row, RowId};
use crate::snapshot::Snapshot;
use crate::store::{StorageError, TableName, WriteKind};
use crate::timestamp::{Timestamp, TxnToken};
use crate::value::ColumnValue;
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Tuning knobs of the log-structured backend.
#[derive(Clone, Copy, Debug)]
pub struct LogStoreConfig {
    /// Records per segment; a full segment is sealed (and spilled, if
    /// spilling is on) and a new one opened.  Clamped to at least 1.
    pub segment_records: usize,
    /// Dead (aborted) records tolerated before the log is compacted.
    /// Clamped to at least 1 — every abort checks the watermark, so
    /// compaction is always caller-driven, never a background task.
    pub compact_watermark: usize,
    /// Spill sealed segments' row payloads to an unlinked temporary file
    /// instead of keeping them on the heap.
    pub spill: bool,
}

impl Default for LogStoreConfig {
    fn default() -> Self {
        LogStoreConfig {
            segment_records: 1024,
            compact_watermark: 4096,
            spill: false,
        }
    }
}

/// Position of a record: (segment index, offset within segment).
type RecordPtr = (usize, usize);

/// Where a record's row contents live.
enum Payload {
    /// On the heap; `None` is a tombstone (tombstones never spill).
    Inline(Option<Row>),
    /// Encoded in the spill file at `offset..offset + len`.
    Spilled { offset: u64, len: u32 },
}

/// One versioned record in the log.
struct LogRecord {
    table: Arc<str>,
    row: RowId,
    writer: TxnToken,
    /// What the write was (insert/update/delete) — mirrored into the
    /// write set at append time and needed again by the durable rewrite,
    /// which re-emits each surviving record as a self-contained frame.
    kind: WriteKind,
    /// Set when the writer commits; `None` while pending.
    commit_ts: Option<Timestamp>,
    /// Unlinked from the index by abort; reclaimed by compaction.
    aborted: bool,
    /// The record's integer value in the table's indexed column, stamped
    /// at append time (or backfilled by `create_index`) so abort can
    /// unhook the ordered index without decoding spilled payloads.
    index_key: Option<i64>,
    payload: Payload,
}

/// A run of records; full segments are sealed and never appended to again.
#[derive(Default)]
struct Segment {
    records: Vec<LogRecord>,
    sealed: bool,
}

/// Per-table state: interned name, the row-id allocator, and the hash
/// index from row id to that row's record positions in append order.
struct TableIndex {
    name: Arc<str>,
    next_row_id: u64,
    /// Row id → positions of its live (non-aborted) records, oldest first.
    /// An entry outlives its records: a row whose only version was aborted
    /// keeps an empty slot, exactly like an empty version chain.
    rows: HashMap<RowId, Vec<RecordPtr>>,
    /// The ordered secondary index's column, once registered.
    indexed_column: Option<String>,
    /// Ordered index: `(key, row id) → refcount` over every live record
    /// that carries that key — committed and uncommitted alike, so it can
    /// only over-approximate any one visibility rule.  `scan_range`
    /// re-checks the picked version precisely.
    ordered: BTreeMap<(i64, RowId), usize>,
}

/// The spill file: append-only, unlinked at creation so the OS reclaims it
/// when the store is dropped (or the process dies).
struct SpillFile {
    file: File,
    len: u64,
    /// Serialises seek-then-IO pairs on platforms without positioned IO:
    /// concurrent readers under the store's read lock share one cursor.
    #[cfg(not(unix))]
    cursor: std::sync::Mutex<()>,
}

impl SpillFile {
    fn new(file: File) -> Self {
        SpillFile {
            file,
            len: 0,
            #[cfg(not(unix))]
            cursor: std::sync::Mutex::new(()),
        }
    }

    /// Write `bytes` at `offset` (positioned IO on unix, seek+write under
    /// the cursor mutex elsewhere).
    #[cfg(unix)]
    fn write_at(&self, bytes: &[u8], offset: u64) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(bytes, offset)
    }

    #[cfg(not(unix))]
    fn write_at(&self, bytes: &[u8], offset: u64) -> io::Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        let _cursor = self.cursor.lock().expect("spill cursor mutex poisoned");
        let mut file = &self.file;
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(bytes)
    }

    /// Read `len` bytes at `offset` (positioned IO on unix, seek+read
    /// under the cursor mutex elsewhere).
    #[cfg(unix)]
    fn read_at(&self, offset: u64, len: u32) -> io::Result<Vec<u8>> {
        use std::os::unix::fs::FileExt;
        let mut buf = vec![0u8; len as usize];
        self.file.read_exact_at(&mut buf, offset)?;
        Ok(buf)
    }

    #[cfg(not(unix))]
    fn read_at(&self, offset: u64, len: u32) -> io::Result<Vec<u8>> {
        use std::io::{Read, Seek, SeekFrom};
        let _cursor = self.cursor.lock().expect("spill cursor mutex poisoned");
        let mut buf = vec![0u8; len as usize];
        let mut file = &self.file;
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(&mut buf)?;
        Ok(buf)
    }
}

/// The durable side of the log: a directory of write-ahead segment files
/// (`wal-<generation>-<sequence>.seg`) plus a `MANIFEST` naming the live
/// generation and the configuration the frames were written under.
struct DurableLog {
    dir: PathBuf,
    /// Live file-set generation; rewrite-on-compact bumps it and deletes
    /// the previous generation's files after the manifest swap.
    gen: u64,
    /// Sequence number of the open segment file within the generation.
    file_seq: u64,
    /// The open segment file, positioned at its end.
    file: File,
    /// fsyncs issued so far (commit boundaries, seals, manifest swaps).
    fsyncs: u64,
    /// Remove the whole directory when the store is dropped (set for
    /// engine-owned throwaway stores from [`LogStore::open_durable_temp`]).
    owns_dir: bool,
}

#[derive(Default)]
struct LogInner {
    /// Table name → index, sorted so `tables()` is deterministic.
    tables: BTreeMap<Arc<str>, TableIndex>,
    segments: Vec<Segment>,
    /// In-flight write sets, in write order (the input to commit, abort,
    /// and First-Committer-Wins).
    write_sets: BTreeMap<TxnToken, Vec<(Arc<str>, RowId, WriteKind)>>,
    /// Positions of each in-flight writer's uncommitted records.
    pending: HashMap<TxnToken, Vec<RecordPtr>>,
    /// Aborted records awaiting compaction.
    dead: usize,
    /// Live (non-aborted) records — the backend's version count.
    live: usize,
    spill: Option<SpillFile>,
    /// Spill-file failures observed (counted immediately before each one
    /// is surfaced as a panic, so the invariant breach stays countable
    /// from a `catch_unwind` test).
    spill_failures: u64,
    /// Test hook: make the next spill write fail ([`LogStore::fail_next_spill_write`]).
    fail_next_spill_write: bool,
    /// Largest commit timestamp ever stamped (live or replayed); recovery
    /// harnesses advance the engine clock past it.
    last_commit_ts: Option<Timestamp>,
    /// The write-ahead file set, when this store is durable.  `None` both
    /// for plain in-memory stores and *during recovery replay*, which is
    /// how replay reuses the ordinary mutation paths without re-emitting
    /// the frames it is reading.
    durable: Option<DurableLog>,
}

/// The append-only log-structured store.  See the module docs for the
/// design; see [`StorageBackend`] for the semantics every method must
/// share with the chain store.
pub struct LogStore {
    config: LogStoreConfig,
    inner: RwLock<LogInner>,
}

impl Default for LogStore {
    fn default() -> Self {
        Self::with_config(LogStoreConfig::default())
    }
}

impl LogStore {
    /// An empty log store with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty log store with explicit tuning knobs.
    pub fn with_config(config: LogStoreConfig) -> Self {
        LogStore {
            config: LogStoreConfig {
                segment_records: config.segment_records.max(1),
                compact_watermark: config.compact_watermark.max(1),
                spill: config.spill,
            },
            inner: RwLock::new(LogInner::default()),
        }
    }

    /// The configuration this store runs with.
    pub fn config(&self) -> LogStoreConfig {
        self.config
    }

    /// Number of segments currently in the log (sealed + open).
    pub fn segment_count(&self) -> usize {
        self.inner.read().segments.len()
    }

    /// Dead (aborted, not yet compacted) records currently in the log.
    pub fn dead_record_count(&self) -> usize {
        self.inner.read().dead
    }

    /// Bytes written to the spill file so far (0 when spilling is off).
    pub fn spilled_bytes(&self) -> u64 {
        self.inner.read().spill.as_ref().map_or(0, |s| s.len)
    }

    /// Spill-file failures observed.  Each failure also panics (the
    /// payload would be silently unreadable otherwise), so this counter
    /// is read from `catch_unwind` in tests and post-mortem tooling.
    pub fn spill_failure_count(&self) -> u64 {
        self.inner.read().spill_failures
    }

    /// Test hook: inject an IO error into the next spill write.
    #[doc(hidden)]
    pub fn fail_next_spill_write(&self) {
        self.inner.write().fail_next_spill_write = true;
    }

    /// Largest commit timestamp ever stamped on a writing transaction
    /// (live or replayed).  Recovery harnesses advance the engine's
    /// timestamp oracle past this before resuming a workload.
    pub fn last_commit_ts(&self) -> Option<Timestamp> {
        self.inner.read().last_commit_ts
    }

    /// fsyncs issued so far: commit boundaries, segment seals, and
    /// manifest swaps (0 for non-durable stores).
    pub fn fsync_count(&self) -> u64 {
        self.inner.read().durable.as_ref().map_or(0, |d| d.fsyncs)
    }

    /// The write-ahead directory, when this store is durable.
    pub fn durable_dir(&self) -> Option<PathBuf> {
        self.inner.read().durable.as_ref().map(|d| d.dir.clone())
    }

    /// Live write-ahead file-set generation, when this store is durable
    /// (bumped by every rewrite-on-compact).
    pub fn durable_generation(&self) -> Option<u64> {
        self.inner.read().durable.as_ref().map(|d| d.gen)
    }

    // ------------------------------------------------------------------
    // Append path.
    // ------------------------------------------------------------------

    fn append(
        &self,
        inner: &mut LogInner,
        table: Arc<str>,
        row: RowId,
        writer: TxnToken,
        payload: Option<Row>,
        kind: WriteKind,
    ) {
        // The durable frame is built before the payload moves into the
        // record (and before the seal decision, so replay reproduces the
        // same file-vs-segment alignment).
        let write_frame = inner.durable.is_some().then(|| {
            let first_write = !inner.write_sets.contains_key(&writer);
            let encoded = payload.as_ref().map(encode_row);
            (
                first_write,
                encode_write_frame(&table, row, writer, kind, None, encoded.as_deref()),
            )
        });
        let index_key = inner
            .tables
            .get(&*table)
            .and_then(|t| t.indexed_column.as_deref())
            .and_then(|col| payload.as_ref().and_then(|r| r.get_int(col)));
        if inner
            .segments
            .last()
            .is_none_or(|s| s.sealed || s.records.len() >= self.config.segment_records)
        {
            self.seal_last(inner);
            inner.segments.push(Segment::default());
        }
        if let Some((first_write, frame)) = write_frame {
            if first_write {
                durable_emit(inner, &encode_begin_frame(writer));
            }
            durable_emit(inner, &frame);
        }
        let seg = inner.segments.len() - 1;
        let segment = inner
            .segments
            .last_mut()
            .expect("open segment just ensured");
        let ptr = (seg, segment.records.len());
        segment.records.push(LogRecord {
            table: Arc::clone(&table),
            row,
            writer,
            kind,
            commit_ts: None,
            aborted: false,
            index_key,
            payload: Payload::Inline(payload),
        });
        inner.live += 1;
        let tindex = inner
            .tables
            .get_mut(&*table)
            .expect("append targets an interned table");
        tindex.rows.entry(row).or_default().push(ptr);
        if let Some(key) = index_key {
            *tindex.ordered.entry((key, row)).or_insert(0) += 1;
        }
        inner.pending.entry(writer).or_default().push(ptr);
        inner
            .write_sets
            .entry(writer)
            .or_default()
            .push((table, row, kind));
    }

    /// Seal the open segment (if any) and, with spilling on, move its row
    /// payloads out to the spill file.  A durable store also seals on
    /// disk: the current write-ahead file is synced and a fresh one
    /// opened, so a sealed segment's frames are never appended to again.
    fn seal_last(&self, inner: &mut LogInner) {
        let Some(last) = inner.segments.len().checked_sub(1) else {
            return;
        };
        if inner.segments[last].sealed {
            return;
        }
        inner.segments[last].sealed = true;
        self.spill_segment(inner, last);
        durable_rotate(inner);
    }

    /// Move a sealed segment's inline row payloads out to the spill file
    /// (no-op unless spilling is enabled).
    fn spill_segment(&self, inner: &mut LogInner, seg: usize) {
        if !self.config.spill {
            return;
        }
        // Encode first, then borrow the spill file mutably: a record's
        // payload moves to `Spilled` only once its bytes are durably in
        // the file buffer.
        for offset in 0..inner.segments[seg].records.len() {
            let encoded = match &inner.segments[seg].records[offset].payload {
                Payload::Inline(Some(row)) => encode_row(row),
                // Tombstones and already-spilled payloads stay put.
                Payload::Inline(None) | Payload::Spilled { .. } => continue,
            };
            let at = spill_write(inner, &encoded);
            inner.segments[seg].records[offset].payload = Payload::Spilled {
                offset: at,
                len: encoded.len() as u32,
            };
        }
    }

    fn intern(&self, inner: &mut LogInner, table: &str) -> Arc<str> {
        if let Some(index) = inner.tables.get(table) {
            return Arc::clone(&index.name);
        }
        durable_emit(inner, &encode_create_table_frame(table));
        let name: Arc<str> = Arc::from(table);
        inner.tables.insert(
            Arc::clone(&name),
            TableIndex {
                name: Arc::clone(&name),
                next_row_id: 0,
                rows: HashMap::new(),
                indexed_column: None,
                ordered: BTreeMap::new(),
            },
        );
        name
    }

    // ------------------------------------------------------------------
    // Read path: a row's records viewed as a version chain.
    // ------------------------------------------------------------------

    fn read_row<F>(&self, table: &str, id: RowId, pick: F) -> Option<Row>
    where
        F: Fn(&LogInner, &[RecordPtr]) -> Option<Row>,
    {
        let inner = self.inner.read();
        let ptrs = inner.tables.get(table)?.rows.get(&id)?;
        pick(&inner, ptrs)
    }

    fn scan<F>(&self, predicate: &RowPredicate, pick: F) -> Vec<(RowId, Row)>
    where
        F: Fn(&LogInner, &[RecordPtr]) -> Option<Row>,
    {
        let inner = self.inner.read();
        let Some(index) = inner.tables.get(predicate.table.as_str()) else {
            return Vec::new();
        };
        let mut rows: Vec<(RowId, Row)> = index
            .rows
            .iter()
            .filter_map(|(id, ptrs)| {
                pick(&inner, ptrs)
                    .filter(|row| predicate.matches(&predicate.table, row))
                    .map(|row| (*id, row))
            })
            .collect();
        sort_scan_output(index.indexed_column.as_deref(), &mut rows);
        rows
    }

    /// Compaction: rewrite the segments without dead records and repoint
    /// the index and pending sets.  Runs synchronously under the write
    /// lock; spilled payload bytes stay where they are in the spill file
    /// (the file is append-only garbage-tolerant — its size is bounded by
    /// total bytes ever sealed, and it lives unlinked in tmp).
    fn compact(&self, inner: &mut LogInner) {
        let old_segments = std::mem::take(&mut inner.segments);
        let mut remap: HashMap<RecordPtr, RecordPtr> = HashMap::new();
        let mut segments: Vec<Segment> = Vec::new();
        for (old_seg, segment) in old_segments.into_iter().enumerate() {
            for (old_off, record) in segment.records.into_iter().enumerate() {
                if record.aborted {
                    continue;
                }
                if segments
                    .last()
                    .is_none_or(|s| s.records.len() >= self.config.segment_records)
                {
                    if let Some(full) = segments.last_mut() {
                        full.sealed = true;
                    }
                    segments.push(Segment::default());
                }
                let seg = segments.len() - 1;
                let target = segments.last_mut().expect("open segment just ensured");
                remap.insert((old_seg, old_off), (seg, target.records.len()));
                target.records.push(record);
            }
        }
        inner.segments = segments;
        inner.dead = 0;
        let repoint = |ptrs: &mut Vec<RecordPtr>| {
            for ptr in ptrs.iter_mut() {
                *ptr = *remap
                    .get(ptr)
                    .expect("index pointer names a record that compaction dropped — only aborted (unindexed) records may be dropped");
            }
        };
        for index in inner.tables.values_mut() {
            for ptrs in index.rows.values_mut() {
                repoint(ptrs);
            }
        }
        for ptrs in inner.pending.values_mut() {
            repoint(ptrs);
        }
        // Segments sealed by the repack above never pass through
        // `seal_last`, so spill their surviving inline payloads here —
        // otherwise records carried over from the formerly-open segment
        // would stay on the heap forever and spill mode would silently
        // stop bounding memory after the first compaction.
        for seg in 0..inner.segments.len() {
            if inner.segments[seg].sealed {
                self.spill_segment(inner, seg);
            }
        }
        // A durable log compacts on disk too: the dead frames the repack
        // just dropped from memory are still in the write-ahead files, so
        // rewrite the file set as a fresh generation of live records only.
        if inner.durable.is_some() {
            self.durable_rewrite(inner);
        }
    }

    // ------------------------------------------------------------------
    // Durable log: open / recover / rewrite.
    // ------------------------------------------------------------------

    /// Open (or recover) a durable log store rooted at `dir`.  A fresh
    /// directory gets a `MANIFEST` recording `config` and an empty first
    /// write-ahead file; a directory that already holds a manifest is
    /// recovered via [`LogStore::recover`] (its manifest configuration
    /// wins — it is what the existing frames were written under).
    pub fn open_durable(dir: impl Into<PathBuf>, config: LogStoreConfig) -> io::Result<Self> {
        Self::open_durable_inner(dir.into(), config, false)
    }

    /// Open a durable store in a fresh process-private temp directory
    /// that is deleted when the store is dropped.  This is what the
    /// engine's durability knob uses: the fsync tax is real, the files
    /// are throwaway.
    pub fn open_durable_temp(config: LogStoreConfig) -> io::Result<Self> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "critique-durable-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        Self::open_durable_inner(dir, config, true)
    }

    fn open_durable_inner(
        dir: PathBuf,
        config: LogStoreConfig,
        owns_dir: bool,
    ) -> io::Result<Self> {
        fs::create_dir_all(&dir)?;
        if dir.join("MANIFEST").exists() {
            let store = Self::recover(&dir)?;
            store
                .inner
                .write()
                .durable
                .as_mut()
                .expect("recover attaches the durable log")
                .owns_dir = owns_dir;
            return Ok(store);
        }
        let store = Self::with_config(config);
        write_manifest(&dir, 0, store.config)?;
        let file = open_wal_file(&dir, 0, 0)?;
        store.inner.write().durable = Some(DurableLog {
            dir,
            gen: 0,
            file_seq: 0,
            file,
            fsyncs: 1,
            owns_dir,
        });
        Ok(store)
    }

    /// Recover a durable store from `dir`: read the manifest, replay the
    /// live generation's write-ahead files in order (deleting orphans a
    /// crashed rewrite left behind), abort every writer whose commit
    /// record never made it to disk, truncate a torn final frame, and
    /// reopen the log for appending.
    ///
    /// Torn-tail contract: frames are appended in mutation order and a
    /// commit fsyncs *after* its `Commit` frame, so a complete `Commit`
    /// frame is always preceded by every `Write` frame it covers —
    /// dropping the unterminated suffix can therefore lose pending
    /// writes (which recovery aborts anyway) but never a committed
    /// record.  A torn frame anywhere but the final file is corruption
    /// and recovery refuses it.
    pub fn recover(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let (gen, config) = read_manifest(&dir)?;
        let store = Self::with_config(config);
        let mut seqs: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some((g, seq)) = parse_wal_name(name.to_str().unwrap_or("")) else {
                continue;
            };
            if g == gen {
                seqs.push(seq);
            } else {
                // Orphan of a rewrite that crashed around its manifest
                // swap: the manifest decides which generation is real.
                fs::remove_file(entry.path())?;
            }
        }
        seqs.sort_unstable();
        let mut last_valid = 0u64;
        for (i, &seq) in seqs.iter().enumerate() {
            let path = dir.join(wal_file_name(gen, seq));
            let bytes = fs::read(&path)?;
            let is_last = i + 1 == seqs.len();
            let valid = store.replay_frames(&bytes, is_last, &path)?;
            if is_last {
                last_valid = valid as u64;
            }
        }
        // Writers with frames but no commit/abort record lost the crash.
        let losers: Vec<TxnToken> = store.inner.read().write_sets.keys().copied().collect();
        for writer in losers {
            store.abort(writer);
        }
        let (file, file_seq) = match seqs.last() {
            Some(&seq) => {
                let path = dir.join(wal_file_name(gen, seq));
                let file = File::options().read(true).write(true).open(&path)?;
                file.set_len(last_valid)?;
                file.sync_data()?;
                drop(file);
                (File::options().append(true).open(&path)?, seq)
            }
            None => (open_wal_file(&dir, gen, 0)?, 0),
        };
        store.inner.write().durable = Some(DurableLog {
            dir,
            gen,
            file_seq,
            file,
            fsyncs: 1,
            owns_dir: false,
        });
        Ok(store)
    }

    /// Replay one write-ahead file's frames, returning the length of the
    /// valid prefix.  An incomplete frame at the end of the *final* file
    /// is a torn tail (dropped); anywhere else it is corruption.
    fn replay_frames(&self, bytes: &[u8], is_last: bool, path: &Path) -> io::Result<usize> {
        let mut at = 0usize;
        while let Some(header) = bytes.get(at..at + 4) {
            let body_len = u32::from_le_bytes(header.try_into().expect("4-byte slice")) as usize;
            let Some(body) = bytes.get(at + 4..at + 4 + body_len) else {
                break;
            };
            self.replay_frame(body).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: frame at byte {at}: {e}", path.display()),
                )
            })?;
            at += 4 + body_len;
        }
        if at != bytes.len() && !is_last {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: torn frame at byte {at} of a sealed write-ahead file",
                    path.display()
                ),
            ));
        }
        Ok(at)
    }

    /// Apply one decoded frame through the ordinary mutation paths (the
    /// durable log is not attached yet, so nothing is re-emitted).
    fn replay_frame(&self, body: &[u8]) -> Result<(), String> {
        let mut cur = FrameCursor { bytes: body, at: 0 };
        match cur.u8()? {
            FRAME_BEGIN => {
                // Informational: the writer's first Write frame re-opens
                // its write set.
                cur.u64()?;
            }
            FRAME_WRITE => {
                let writer = TxnToken(cur.u64()?);
                let table = cur.str()?;
                let row = RowId(cur.u64()?);
                let kind = write_kind_from_tag(cur.u8()?)?;
                let commit_ts = (cur.u8()? == 1)
                    .then(|| cur.u64())
                    .transpose()?
                    .map(Timestamp);
                let payload = if cur.u8()? == 1 {
                    let len = cur.u32()? as usize;
                    Some(decode_row(cur.take(len)?).ok_or("payload bytes do not decode as a row")?)
                } else {
                    None
                };
                self.replay_write(&table, row, writer, kind, payload, commit_ts);
            }
            FRAME_COMMIT => {
                let writer = TxnToken(cur.u64()?);
                let ts = Timestamp(cur.u64()?);
                self.commit(writer, ts);
            }
            FRAME_ABORT => {
                let writer = TxnToken(cur.u64()?);
                self.abort(writer);
            }
            FRAME_CREATE_TABLE => {
                let table = cur.str()?;
                self.create_table(&table);
            }
            FRAME_CREATE_INDEX => {
                let table = cur.str()?;
                let column = cur.str()?;
                self.create_index(&table, &column);
            }
            FRAME_TABLE_META => {
                let table = cur.str()?;
                let next_row_id = cur.u64()?;
                let indexed = (cur.u8()? == 1).then(|| cur.str()).transpose()?;
                let ghost_count = cur.u32()?;
                let mut ghosts = Vec::with_capacity(ghost_count as usize);
                for _ in 0..ghost_count {
                    ghosts.push(RowId(cur.u64()?));
                }
                let mut inner = self.inner.write();
                let name = self.intern(&mut inner, &table);
                let tindex = inner.tables.get_mut(&*name).expect("table just interned");
                tindex.next_row_id = tindex.next_row_id.max(next_row_id);
                tindex.indexed_column = indexed;
                for ghost in ghosts {
                    tindex.rows.entry(ghost).or_default();
                }
            }
            other => return Err(format!("unknown frame tag {other}")),
        }
        cur.expect_end()
    }

    /// Replay one `Write` frame.  Frames from the live append path carry
    /// no commit state (a later `Commit`/`Abort` frame resolves them);
    /// frames from a compaction rewrite inline it, so the pending
    /// bookkeeping the append path creates is immediately retired.
    fn replay_write(
        &self,
        table: &str,
        id: RowId,
        writer: TxnToken,
        kind: WriteKind,
        payload: Option<Row>,
        commit_ts: Option<Timestamp>,
    ) {
        let mut guard = self.inner.write();
        let inner = &mut *guard;
        let name = self.intern(inner, table);
        if matches!(kind, WriteKind::Insert) {
            let tindex = inner.tables.get_mut(&*name).expect("table just interned");
            tindex.next_row_id = tindex.next_row_id.max(id.0 + 1);
        }
        self.append(inner, name, id, writer, payload, kind);
        if let Some(ts) = commit_ts {
            let ptr = inner
                .pending
                .get_mut(&writer)
                .and_then(Vec::pop)
                .expect("append just pushed a pending pointer");
            if inner.pending.get(&writer).is_some_and(Vec::is_empty) {
                inner.pending.remove(&writer);
            }
            let writes = inner
                .write_sets
                .get_mut(&writer)
                .expect("append just pushed a write-set entry");
            writes.pop();
            if writes.is_empty() {
                inner.write_sets.remove(&writer);
            }
            inner.segments[ptr.0].records[ptr.1].commit_ts = Some(ts);
            if inner.last_commit_ts.is_none_or(|t| t < ts) {
                inner.last_commit_ts = Some(ts);
            }
        }
    }

    /// Rewrite-on-compact: emit the post-compaction state as a fresh
    /// generation of write-ahead files (per-table metadata first, then
    /// every surviving record with its commit state inlined), fsync them,
    /// swap the manifest, and delete the old generation — so spill
    /// garbage and dead records are bounded on disk as they are in
    /// memory.  A crash anywhere in between recovers consistently: the
    /// manifest names the authoritative generation and recovery deletes
    /// the other one's files.
    fn durable_rewrite(&self, inner: &mut LogInner) {
        let (dir, old_gen, owns_dir, mut fsyncs) = {
            let durable = inner.durable.as_ref().expect("durable log attached");
            (
                durable.dir.clone(),
                durable.gen,
                durable.owns_dir,
                durable.fsyncs,
            )
        };
        let gen = old_gen + 1;
        let fail = |what: &str, e: io::Error| -> ! {
            panic!("durable rewrite (generation {gen}): {what} failed: {e} — the previous generation is still authoritative, but compaction cannot proceed")
        };
        // Per-table metadata: the row-id allocator, the indexed column,
        // and ghost row slots (rows whose every record was aborted) —
        // nothing in the surviving record stream re-creates these.
        let mut head = Vec::new();
        for (name, tindex) in &inner.tables {
            let mut ghosts: Vec<RowId> = tindex
                .rows
                .iter()
                .filter(|(_, ptrs)| ptrs.is_empty())
                .map(|(id, _)| *id)
                .collect();
            ghosts.sort_unstable();
            head.extend_from_slice(&encode_table_meta_frame(
                name,
                tindex.next_row_id,
                tindex.indexed_column.as_deref(),
                &ghosts,
            ));
        }
        // One file per in-memory segment, so the durable seal boundaries
        // track the in-memory ones; the open segment's file stays open.
        let mut last_file: Option<(File, u64)> = None;
        let segment_count = inner.segments.len().max(1);
        for seg in 0..segment_count {
            let mut buf = std::mem::take(&mut head);
            if let Some(segment) = inner.segments.get(seg) {
                for rec in &segment.records {
                    let payload: Option<Vec<u8>> = match &rec.payload {
                        Payload::Inline(Some(row)) => Some(encode_row(row)),
                        Payload::Inline(None) => None,
                        Payload::Spilled { offset, len } => Some(
                            spill_read(inner, *offset, *len)
                                .expect("spilled payload must be readable back for the rewrite"),
                        ),
                    };
                    buf.extend_from_slice(&encode_write_frame(
                        &rec.table,
                        rec.row,
                        rec.writer,
                        rec.kind,
                        rec.commit_ts,
                        payload.as_deref(),
                    ));
                }
            }
            let path = dir.join(wal_file_name(gen, seg as u64));
            let mut file = File::options()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)
                .unwrap_or_else(|e| fail("creating a segment file", e));
            file.write_all(&buf)
                .unwrap_or_else(|e| fail("writing a segment file", e));
            file.sync_data()
                .unwrap_or_else(|e| fail("syncing a segment file", e));
            fsyncs += 1;
            last_file = Some((file, seg as u64));
        }
        write_manifest(&dir, gen, self.config).unwrap_or_else(|e| fail("swapping the manifest", e));
        fsyncs += 1;
        // The old generation is garbage the moment the manifest names the
        // new one; recovery would delete leftovers, but don't leave any.
        if let Ok(entries) = fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                if parse_wal_name(name.to_str().unwrap_or("")).is_some_and(|(g, _)| g != gen) {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        let (file, file_seq) = last_file.expect("at least one segment file was written");
        inner.durable = Some(DurableLog {
            dir,
            gen,
            file_seq,
            file,
            fsyncs,
            owns_dir,
        });
    }
}

// ---------------------------------------------------------------------
// Record access helpers (free functions so closures can borrow `LogInner`
// immutably while the store's methods hold the lock guard).
// ---------------------------------------------------------------------

fn record<'a>(inner: &'a LogInner, ptr: &RecordPtr) -> &'a LogRecord {
    &inner.segments[ptr.0].records[ptr.1]
}

fn payload_row(inner: &LogInner, rec: &LogRecord) -> Option<Row> {
    match &rec.payload {
        Payload::Inline(row) => row.clone(),
        Payload::Spilled { offset, len } => {
            let bytes = spill_read(inner, *offset, *len)
                .expect("spilled payload must be readable back from the spill file");
            Some(decode_row(&bytes).expect("spilled payload bytes must decode as a row"))
        }
    }
}

fn is_tombstone(rec: &LogRecord) -> bool {
    matches!(rec.payload, Payload::Inline(None))
}

/// The most recent record regardless of commit state (dirty read).
fn latest_any(inner: &LogInner, ptrs: &[RecordPtr]) -> Option<Row> {
    ptrs.last()
        .and_then(|p| payload_row(inner, record(inner, p)))
}

/// The most recent committed record.
fn latest_committed(inner: &LogInner, ptrs: &[RecordPtr]) -> Option<Row> {
    ptrs.iter()
        .rev()
        .map(|p| record(inner, p))
        .find(|r| r.commit_ts.is_some())
        .and_then(|r| payload_row(inner, r))
}

/// The most recent record committed at or before `ts`.
fn committed_as_of<'a>(
    inner: &'a LogInner,
    ptrs: &[RecordPtr],
    ts: Timestamp,
) -> Option<&'a LogRecord> {
    ptrs.iter()
        .rev()
        .map(|p| record(inner, p))
        .find(|r| matches!(r.commit_ts, Some(c) if c <= ts))
}

/// Snapshot Isolation visibility (own uncommitted write first).
fn visible_for(
    inner: &LogInner,
    ptrs: &[RecordPtr],
    reader: TxnToken,
    start_ts: Timestamp,
) -> Option<Row> {
    ptrs.iter()
        .rev()
        .map(|p| record(inner, p))
        .find(|r| r.writer == reader && r.commit_ts.is_none())
        .or_else(|| committed_as_of(inner, ptrs, start_ts))
        .and_then(|r| payload_row(inner, r))
}

impl StorageBackend for LogStore {
    fn backend_name(&self) -> &'static str {
        "logstore"
    }

    fn create_table(&self, table: &str) {
        let mut inner = self.inner.write();
        self.intern(&mut inner, table);
    }

    fn tables(&self) -> Vec<TableName> {
        self.inner
            .read()
            .tables
            .keys()
            .map(|k| k.to_string())
            .collect()
    }

    fn row_ids(&self, table: &str) -> Vec<RowId> {
        let inner = self.inner.read();
        let mut ids: Vec<RowId> = inner
            .tables
            .get(table)
            .map(|t| t.rows.keys().copied().collect())
            .unwrap_or_default();
        ids.sort_unstable();
        ids
    }

    fn insert(&self, table: &str, writer: TxnToken, row: Row) -> RowId {
        let mut inner = self.inner.write();
        let name = self.intern(&mut inner, table);
        let index = inner.tables.get_mut(&*name).expect("table just interned");
        let id = RowId(index.next_row_id);
        index.next_row_id += 1;
        self.append(&mut inner, name, id, writer, Some(row), WriteKind::Insert);
        id
    }

    fn update(
        &self,
        table: &str,
        writer: TxnToken,
        id: RowId,
        row: Row,
    ) -> Result<(), StorageError> {
        let mut inner = self.inner.write();
        let name = match inner.tables.get(table) {
            Some(index) => Arc::clone(&index.name),
            None => return Err(StorageError::NoSuchTable(table.to_string())),
        };
        if !inner.tables[&*name].rows.contains_key(&id) {
            return Err(StorageError::NoSuchRow(table.to_string(), id));
        }
        self.append(&mut inner, name, id, writer, Some(row), WriteKind::Update);
        Ok(())
    }

    fn delete(&self, table: &str, writer: TxnToken, id: RowId) -> Result<(), StorageError> {
        let mut inner = self.inner.write();
        let name = match inner.tables.get(table) {
            Some(index) => Arc::clone(&index.name),
            None => return Err(StorageError::NoSuchTable(table.to_string())),
        };
        if !inner.tables[&*name].rows.contains_key(&id) {
            return Err(StorageError::NoSuchRow(table.to_string(), id));
        }
        self.append(&mut inner, name, id, writer, None, WriteKind::Delete);
        Ok(())
    }

    fn get_latest_any(&self, table: &str, id: RowId) -> Option<Row> {
        self.read_row(table, id, latest_any)
    }

    fn get_latest_committed(&self, table: &str, id: RowId) -> Option<Row> {
        self.read_row(table, id, latest_committed)
    }

    fn get_committed_as_of(&self, table: &str, id: RowId, ts: Timestamp) -> Option<Row> {
        self.read_row(table, id, |inner, ptrs| {
            committed_as_of(inner, ptrs, ts).and_then(|r| payload_row(inner, r))
        })
    }

    fn get_visible(
        &self,
        table: &str,
        id: RowId,
        reader: TxnToken,
        start_ts: Timestamp,
    ) -> Option<Row> {
        self.read_row(table, id, |inner, ptrs| {
            visible_for(inner, ptrs, reader, start_ts)
        })
    }

    fn scan_latest_any(&self, predicate: &RowPredicate) -> Vec<(RowId, Row)> {
        self.scan(predicate, latest_any)
    }

    fn scan_latest_committed(&self, predicate: &RowPredicate) -> Vec<(RowId, Row)> {
        self.scan(predicate, latest_committed)
    }

    fn scan_committed_as_of(&self, predicate: &RowPredicate, ts: Timestamp) -> Vec<(RowId, Row)> {
        self.scan(predicate, |inner, ptrs| {
            committed_as_of(inner, ptrs, ts).and_then(|r| payload_row(inner, r))
        })
    }

    fn scan_visible(
        &self,
        predicate: &RowPredicate,
        reader: TxnToken,
        start_ts: Timestamp,
    ) -> Vec<(RowId, Row)> {
        self.scan(predicate, |inner, ptrs| {
            visible_for(inner, ptrs, reader, start_ts)
        })
    }

    fn create_index(&self, table: &str, column: &str) {
        let mut inner = self.inner.write();
        let name = self.intern(&mut inner, table);
        if inner.tables[&*name].indexed_column.as_deref() == Some(column) {
            return;
        }
        durable_emit(&mut inner, &encode_create_index_frame(table, column));
        // Backfill: stamp every live record with its key in the new
        // column, then rebuild the ordered map from those stamps.
        let ptrs: Vec<RecordPtr> = inner.tables[&*name]
            .rows
            .values()
            .flat_map(|v| v.iter().copied())
            .collect();
        let mut ordered: BTreeMap<(i64, RowId), usize> = BTreeMap::new();
        let mut stamped: Vec<(RecordPtr, Option<i64>)> = Vec::with_capacity(ptrs.len());
        for ptr in ptrs {
            let rec = record(&inner, &ptr);
            let key = payload_row(&inner, rec).and_then(|r| r.get_int(column));
            if let Some(key) = key {
                *ordered.entry((key, rec.row)).or_insert(0) += 1;
            }
            stamped.push((ptr, key));
        }
        for (ptr, key) in stamped {
            inner.segments[ptr.0].records[ptr.1].index_key = key;
        }
        let tindex = inner.tables.get_mut(&*name).expect("table just interned");
        tindex.indexed_column = Some(column.to_string());
        tindex.ordered = ordered;
    }

    fn indexed_column(&self, table: &str) -> Option<String> {
        self.inner
            .read()
            .tables
            .get(table)
            .and_then(|t| t.indexed_column.clone())
    }

    fn scan_range(
        &self,
        table: &str,
        column: &str,
        range: &KeyInterval,
        view: ScanView,
    ) -> Vec<(RowId, Row)> {
        if range.is_int_empty() {
            return Vec::new();
        }
        let inner = self.inner.read();
        let Some(index) = inner.tables.get(table) else {
            return Vec::new();
        };
        let pick = |ptrs: &[RecordPtr]| -> Option<Row> {
            match view {
                ScanView::LatestAny => latest_any(&inner, ptrs),
                ScanView::LatestCommitted => latest_committed(&inner, ptrs),
                ScanView::CommittedAsOf(ts) => {
                    committed_as_of(&inner, ptrs, ts).and_then(|r| payload_row(&inner, r))
                }
                ScanView::Visible { reader, start_ts } => {
                    visible_for(&inner, ptrs, reader, start_ts)
                }
            }
        };
        let mut rows: Vec<(i64, RowId, Row)> = Vec::new();
        if index.indexed_column.as_deref() == Some(column) {
            // The ordered index covers every live record, so the probe can
            // only over-approximate; the picked version is re-checked.
            let lo = (range.lo().unwrap_or(i64::MIN), RowId(0));
            let hi = (range.hi().unwrap_or(i64::MAX), RowId(u64::MAX));
            let mut visited = HashSet::new();
            for &(_, id) in index.ordered.range(lo..=hi).map(|(entry, _)| entry) {
                if !visited.insert(id) {
                    continue;
                }
                if let Some(row) = index.rows.get(&id).and_then(|ptrs| pick(ptrs)) {
                    if let Some(key) = row.get_int(column) {
                        if range.contains(key) {
                            rows.push((key, id, row));
                        }
                    }
                }
            }
        } else {
            for (id, ptrs) in &index.rows {
                if let Some(row) = pick(ptrs) {
                    if let Some(key) = row.get_int(column) {
                        if range.contains(key) {
                            rows.push((key, *id, row));
                        }
                    }
                }
            }
        }
        rows.sort_unstable_by_key(|(key, id, _)| (*key, *id));
        rows.into_iter().map(|(_, id, row)| (id, row)).collect()
    }

    fn writes_of(&self, writer: TxnToken) -> Vec<(TableName, RowId, WriteKind)> {
        self.inner
            .read()
            .write_sets
            .get(&writer)
            .map(|writes| {
                writes
                    .iter()
                    .map(|(table, id, kind)| (table.to_string(), *id, *kind))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn first_committer_conflict(
        &self,
        writer: TxnToken,
        start_ts: Timestamp,
    ) -> Option<(TableName, RowId)> {
        let inner = self.inner.read();
        let writes = inner.write_sets.get(&writer)?;
        for (table, id, _) in writes {
            let conflict = inner
                .tables
                .get(&**table)
                .and_then(|t| t.rows.get(id))
                .expect("write-set entry names an indexed row — the append path indexes before recording")
                .iter()
                .map(|p| record(&inner, p))
                .any(|r| r.writer != writer && matches!(r.commit_ts, Some(c) if c > start_ts));
            if conflict {
                return Some((table.to_string(), *id));
            }
        }
        None
    }

    fn has_foreign_uncommitted_on_writes(&self, writer: TxnToken) -> bool {
        let inner = self.inner.read();
        let Some(writes) = inner.write_sets.get(&writer) else {
            return false;
        };
        writes.iter().any(|(table, id, _)| {
            inner
                .tables
                .get(&**table)
                .and_then(|t| t.rows.get(id))
                .expect("write-set entry names an indexed row — the append path indexes before recording")
                .iter()
                .map(|p| record(&inner, p))
                .any(|r| r.writer != writer && r.commit_ts.is_none())
        })
    }

    fn commit(&self, writer: TxnToken, ts: Timestamp) {
        let mut inner = self.inner.write();
        let had_writes = inner.write_sets.remove(&writer).is_some();
        let pending = inner.pending.remove(&writer).unwrap_or_default();
        for ptr in pending {
            let rec = &mut inner.segments[ptr.0].records[ptr.1];
            assert_eq!(
                rec.writer, writer,
                "commit({writer}): pending pointer resolves to a record owned by {} — the pending set and the log disagree",
                rec.writer,
            );
            assert!(
                rec.commit_ts.is_none(),
                "commit({writer}): record at {ptr:?} is already committed at {:?} — a version must be stamped exactly once",
                rec.commit_ts,
            );
            rec.commit_ts = Some(ts);
        }
        if had_writes {
            if inner.last_commit_ts.is_none_or(|t| t < ts) {
                inner.last_commit_ts = Some(ts);
            }
            // The commit boundary: the transaction is durable exactly when
            // its Commit frame is on disk.  Read-only commits (no write
            // set) touch nothing durable and pay no fsync.
            if inner.durable.is_some() {
                durable_emit(&mut inner, &encode_commit_frame(writer, ts));
                durable_sync(&mut inner);
            }
        }
    }

    fn abort(&self, writer: TxnToken) {
        let mut inner = self.inner.write();
        inner.write_sets.remove(&writer);
        let pending = inner.pending.remove(&writer).unwrap_or_default();
        for ptr in &pending {
            let rec = &mut inner.segments[ptr.0].records[ptr.1];
            assert!(
                rec.commit_ts.is_none(),
                "abort({writer}): record at {ptr:?} was already committed — commit and abort are mutually exclusive",
            );
            rec.aborted = true;
            // Unlink from the row's index entry; the (possibly empty)
            // entry itself stays, like an empty version chain.
            let table = Arc::clone(&rec.table);
            let row = rec.row;
            let index_key = rec.index_key;
            let tindex = inner
                .tables
                .get_mut(&*table)
                .expect("aborting an indexed record — the append path indexes before recording");
            tindex
                .rows
                .get_mut(&row)
                .expect("aborting an indexed record — the append path indexes before recording")
                .retain(|p| p != ptr);
            if let Some(key) = index_key {
                if let Some(count) = tindex.ordered.get_mut(&(key, row)) {
                    *count -= 1;
                    if *count == 0 {
                        tindex.ordered.remove(&(key, row));
                    }
                }
            }
            inner.dead += 1;
            inner.live -= 1;
        }
        // No fsync: a writer with no durable Commit frame is aborted by
        // recovery anyway, so the Abort frame is an optimisation (it lets
        // replay reclaim the records) rather than a durability point.
        if !pending.is_empty() && inner.durable.is_some() {
            durable_emit(&mut inner, &encode_abort_frame(writer));
        }
        if inner.dead >= self.config.compact_watermark {
            self.compact(&mut inner);
        }
    }

    fn snapshot(&self, ts: Timestamp) -> Snapshot<'_> {
        Snapshot::new(self, ts)
    }

    fn committed_row_count(&self, table: &str) -> usize {
        let inner = self.inner.read();
        let Some(index) = inner.tables.get(table) else {
            return 0;
        };
        index
            .rows
            .values()
            .filter(|ptrs| {
                ptrs.iter()
                    .rev()
                    .map(|p| record(&inner, p))
                    .find(|r| r.commit_ts.is_some())
                    .is_some_and(|r| !is_tombstone(r))
            })
            .count()
    }

    fn version_count(&self) -> usize {
        self.inner.read().live
    }
}

impl fmt::Debug for LogStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("LogStore")
            .field("segments", &inner.segments.len())
            .field("live", &inner.live)
            .field("dead", &inner.dead)
            .field("tables", &inner.tables.keys().collect::<Vec<_>>())
            .field("spill", &self.config.spill)
            .finish()
    }
}

// ---------------------------------------------------------------------
// Spill file plumbing.
// ---------------------------------------------------------------------

/// Append `bytes` to the spill file (creating it on first use), returning
/// the offset they start at.  A failed spill is an invariant breach — the
/// caller is about to drop the payload's inline copy, so swallowing the
/// error would make the record silently unreadable.  It is counted
/// ([`LogStore::spill_failure_count`]) and surfaced as a panic, matching
/// the store.rs convention for broken internal invariants.
fn spill_write(inner: &mut LogInner, bytes: &[u8]) -> u64 {
    if inner.spill.is_none() {
        match create_spill_file() {
            Ok(file) => inner.spill = Some(SpillFile::new(file)),
            Err(e) => {
                inner.spill_failures += 1;
                panic!("spill file creation failed: {e} — a sealed segment's payloads cannot leave the heap");
            }
        }
    }
    let injected = std::mem::take(&mut inner.fail_next_spill_write);
    let (result, at) = {
        let spill = inner.spill.as_mut().expect("spill file just ensured");
        let at = spill.len;
        // Positioned write at the recorded length: a failed or partial
        // write never desynchronises `len` from where later payloads
        // actually land — the recorded offset stays authoritative.
        let result = if injected {
            Err(io::Error::other("injected spill write failure"))
        } else {
            spill.write_at(bytes, at)
        };
        if result.is_ok() {
            spill.len += bytes.len() as u64;
        }
        (result, at)
    };
    if let Err(e) = result {
        inner.spill_failures += 1;
        panic!(
            "spill write of {} bytes at offset {at} failed: {e} — the sealed payload would be unreadable",
            bytes.len(),
        );
    }
    at
}

/// Create the unlinked temp file: open, then immediately remove the path,
/// so the data is reclaimed by the OS no matter how the process exits.
fn create_spill_file() -> io::Result<File> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir();
    let unique = format!(
        "critique-logstore-{}-{}.spill",
        std::process::id(),
        SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
    );
    let path = dir.join(unique);
    let file = File::options()
        .read(true)
        .write(true)
        .create_new(true)
        .open(&path)?;
    // Unlink immediately; the open handle keeps the inode alive.
    let _ = fs::remove_file(&path);
    Ok(file)
}

/// Read a spilled payload back.  `None` only when no spill file exists
/// (never written to); an IO failure on a recorded payload is — like a
/// failed write — an invariant breach and panics.
fn spill_read(inner: &LogInner, offset: u64, len: u32) -> Option<Vec<u8>> {
    let spill = inner.spill.as_ref()?;
    Some(spill.read_at(offset, len).unwrap_or_else(|e| {
        panic!("spill read of {len} bytes at offset {offset} failed: {e} — a recorded payload vanished")
    }))
}

// ---------------------------------------------------------------------
// Durable write-ahead layer: frame codec and file plumbing.
//
// A write-ahead file is a sequence of frames, each `[u32 LE body length]`
// followed by the body; a body is a one-byte tag followed by the tag's
// fields (u64/u32 little-endian, strings as u32 length + UTF-8, row
// payloads through `encode_row`).  The length prefix is what makes the
// torn-tail contract checkable: a frame is either wholly present or
// wholly absent.
// ---------------------------------------------------------------------

/// A transaction's first write (informational; replay reopens the write
/// set at the first `Write` frame).
const FRAME_BEGIN: u8 = 1;
/// One versioned record: writer, table, row, write kind, optional inline
/// commit timestamp (only in rewrite output), optional row payload
/// (absent = tombstone).
const FRAME_WRITE: u8 = 2;
/// Commit record: everything the writer appended is durable at this
/// timestamp.  The append path fsyncs immediately after this frame.
const FRAME_COMMIT: u8 = 3;
/// Abort record: the writer's records are dead (an optimisation for
/// replay — recovery aborts commit-less writers regardless).
const FRAME_ABORT: u8 = 4;
/// Table registration, in intern order.
const FRAME_CREATE_TABLE: u8 = 5;
/// Ordered secondary index registration; replay re-runs the backfill.
const FRAME_CREATE_INDEX: u8 = 6;
/// Per-table metadata at the head of a rewrite generation: row-id
/// allocator, indexed column, and ghost row slots, none of which the
/// surviving record stream re-creates.
const FRAME_TABLE_META: u8 = 7;

fn write_kind_tag(kind: WriteKind) -> u8 {
    match kind {
        WriteKind::Insert => 0,
        WriteKind::Update => 1,
        WriteKind::Delete => 2,
    }
}

fn write_kind_from_tag(tag: u8) -> Result<WriteKind, String> {
    match tag {
        0 => Ok(WriteKind::Insert),
        1 => Ok(WriteKind::Update),
        2 => Ok(WriteKind::Delete),
        other => Err(format!("unknown write-kind tag {other}")),
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Wrap a frame body in its length header.
fn frame(body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + body.len());
    push_u32(&mut out, body.len() as u32);
    out.extend_from_slice(&body);
    out
}

fn encode_begin_frame(writer: TxnToken) -> Vec<u8> {
    let mut body = vec![FRAME_BEGIN];
    push_u64(&mut body, writer.0);
    frame(body)
}

fn encode_write_frame(
    table: &str,
    row: RowId,
    writer: TxnToken,
    kind: WriteKind,
    commit_ts: Option<Timestamp>,
    payload: Option<&[u8]>,
) -> Vec<u8> {
    let mut body = vec![FRAME_WRITE];
    push_u64(&mut body, writer.0);
    push_str(&mut body, table);
    push_u64(&mut body, row.0);
    body.push(write_kind_tag(kind));
    match commit_ts {
        Some(ts) => {
            body.push(1);
            push_u64(&mut body, ts.0);
        }
        None => body.push(0),
    }
    match payload {
        Some(bytes) => {
            body.push(1);
            push_u32(&mut body, bytes.len() as u32);
            body.extend_from_slice(bytes);
        }
        None => body.push(0),
    }
    frame(body)
}

fn encode_commit_frame(writer: TxnToken, ts: Timestamp) -> Vec<u8> {
    let mut body = vec![FRAME_COMMIT];
    push_u64(&mut body, writer.0);
    push_u64(&mut body, ts.0);
    frame(body)
}

fn encode_abort_frame(writer: TxnToken) -> Vec<u8> {
    let mut body = vec![FRAME_ABORT];
    push_u64(&mut body, writer.0);
    frame(body)
}

fn encode_create_table_frame(table: &str) -> Vec<u8> {
    let mut body = vec![FRAME_CREATE_TABLE];
    push_str(&mut body, table);
    frame(body)
}

fn encode_create_index_frame(table: &str, column: &str) -> Vec<u8> {
    let mut body = vec![FRAME_CREATE_INDEX];
    push_str(&mut body, table);
    push_str(&mut body, column);
    frame(body)
}

fn encode_table_meta_frame(
    table: &str,
    next_row_id: u64,
    indexed: Option<&str>,
    ghosts: &[RowId],
) -> Vec<u8> {
    let mut body = vec![FRAME_TABLE_META];
    push_str(&mut body, table);
    push_u64(&mut body, next_row_id);
    match indexed {
        Some(column) => {
            body.push(1);
            push_str(&mut body, column);
        }
        None => body.push(0),
    }
    push_u32(&mut body, ghosts.len() as u32);
    for ghost in ghosts {
        push_u64(&mut body, ghost.0);
    }
    frame(body)
}

/// Bounds-checked reader over one frame body.
struct FrameCursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> FrameCursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let slice = self
            .bytes
            .get(self.at..self.at + n)
            .ok_or_else(|| format!("frame body ends early at byte {}", self.at))?;
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4-byte slice"),
        ))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8-byte slice"),
        ))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?)
            .map(str::to_string)
            .map_err(|_| "frame string is not UTF-8".to_string())
    }

    fn expect_end(&self) -> Result<(), String> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after frame body",
                self.bytes.len() - self.at
            ))
        }
    }
}

/// Append an encoded frame to the open write-ahead file.  A no-op for
/// non-durable stores and during recovery replay (when `durable` is
/// `None`); an append failure on a live durable store is fatal — the log
/// could no longer be the truth.
fn durable_emit(inner: &mut LogInner, frame: &[u8]) {
    if let Some(durable) = inner.durable.as_mut() {
        durable.file.write_all(frame).unwrap_or_else(|e| {
            panic!(
                "write-ahead append under {} failed: {e} — the log can no longer be the truth",
                durable.dir.display()
            )
        });
    }
}

/// Fsync the open write-ahead file (the commit boundary).
fn durable_sync(inner: &mut LogInner) {
    if let Some(durable) = inner.durable.as_mut() {
        durable.file.sync_data().unwrap_or_else(|e| {
            panic!(
                "write-ahead fsync under {} failed: {e} — a reported commit might not be durable",
                durable.dir.display()
            )
        });
        durable.fsyncs += 1;
    }
}

/// Seal the open write-ahead file (sync it) and open the next one in the
/// generation — the durable side of an in-memory segment seal.
fn durable_rotate(inner: &mut LogInner) {
    let Some(durable) = inner.durable.as_mut() else {
        return;
    };
    durable.file.sync_data().unwrap_or_else(|e| {
        panic!(
            "write-ahead seal fsync under {} failed: {e} — a sealed segment might not be durable",
            durable.dir.display()
        )
    });
    durable.fsyncs += 1;
    durable.file_seq += 1;
    durable.file = open_wal_file(&durable.dir, durable.gen, durable.file_seq).unwrap_or_else(|e| {
        panic!(
            "opening the next write-ahead file under {} failed: {e}",
            durable.dir.display()
        )
    });
}

fn wal_file_name(gen: u64, seq: u64) -> String {
    format!("wal-{gen}-{seq}.seg")
}

fn parse_wal_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    let (gen, seq) = rest.split_once('-')?;
    Some((gen.parse().ok()?, seq.parse().ok()?))
}

fn open_wal_file(dir: &Path, gen: u64, seq: u64) -> io::Result<File> {
    File::options()
        .append(true)
        .create(true)
        .open(dir.join(wal_file_name(gen, seq)))
}

/// Write the manifest atomically: temp file, sync, rename over, then a
/// best-effort directory sync so the rename itself is on disk.
fn write_manifest(dir: &Path, gen: u64, config: LogStoreConfig) -> io::Result<()> {
    let body = format!(
        "gen={gen}\nsegment_records={}\ncompact_watermark={}\nspill={}\n",
        config.segment_records,
        config.compact_watermark,
        u8::from(config.spill),
    );
    let tmp = dir.join("MANIFEST.tmp");
    let mut file = File::create(&tmp)?;
    file.write_all(body.as_bytes())?;
    file.sync_data()?;
    drop(file);
    fs::rename(&tmp, dir.join("MANIFEST"))?;
    if let Ok(dirf) = File::open(dir) {
        let _ = dirf.sync_all();
    }
    Ok(())
}

fn read_manifest(dir: &Path) -> io::Result<(u64, LogStoreConfig)> {
    let text = fs::read_to_string(dir.join("MANIFEST"))?;
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("MANIFEST: {what}"));
    let mut gen = None;
    let mut config = LogStoreConfig::default();
    for line in text.lines() {
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        match key {
            "gen" => gen = Some(value.parse().map_err(|_| bad("bad generation"))?),
            "segment_records" => {
                config.segment_records = value.parse().map_err(|_| bad("bad segment_records"))?;
            }
            "compact_watermark" => {
                config.compact_watermark =
                    value.parse().map_err(|_| bad("bad compact_watermark"))?;
            }
            "spill" => config.spill = value == "1",
            _ => {}
        }
    }
    Ok((gen.ok_or_else(|| bad("missing gen"))?, config))
}

impl Drop for LogStore {
    fn drop(&mut self) {
        let mut inner = self.inner.write();
        if let Some(durable) = inner.durable.take() {
            // A clean drop leaves nothing to lose at the next recovery.
            let _ = durable.file.sync_data();
            if durable.owns_dir {
                drop(durable.file);
                let _ = fs::remove_dir_all(&durable.dir);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Row codec (the offline serde shim does not serialise, so the spill
// format is hand-rolled: length-prefixed column names and tagged values).
// ---------------------------------------------------------------------

fn encode_row(row: &Row) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(row.len() as u32).to_le_bytes());
    for (name, value) in row.columns() {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        match value {
            ColumnValue::Int(v) => {
                out.push(0);
                out.extend_from_slice(&v.to_le_bytes());
            }
            ColumnValue::Text(s) => {
                out.push(1);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            ColumnValue::Bool(b) => {
                out.push(2);
                out.push(u8::from(*b));
            }
            ColumnValue::Null => out.push(3),
        }
    }
    out
}

fn decode_row(bytes: &[u8]) -> Option<Row> {
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
        let slice = bytes.get(*at..*at + n)?;
        *at += n;
        Some(slice)
    };
    let take_u32 =
        |at: &mut usize| -> Option<u32> { Some(u32::from_le_bytes(take(at, 4)?.try_into().ok()?)) };
    let ncols = take_u32(&mut at)?;
    let mut row = Row::new();
    for _ in 0..ncols {
        let name_len = take_u32(&mut at)? as usize;
        let name = std::str::from_utf8(take(&mut at, name_len)?)
            .ok()?
            .to_string();
        let tag = *take(&mut at, 1)?.first()?;
        match tag {
            0 => {
                let v = i64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?);
                row.set(&name, v);
            }
            1 => {
                let len = take_u32(&mut at)? as usize;
                let s = std::str::from_utf8(take(&mut at, len)?).ok()?.to_string();
                row.set(&name, s.as_str());
            }
            2 => {
                let b = *take(&mut at, 1)?.first()? != 0;
                row.set(&name, b);
            }
            3 => row.set(&name, ColumnValue::Null),
            _ => return None,
        }
    }
    (at == bytes.len()).then_some(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Condition, RowPredicate};

    fn balance_row(v: i64) -> Row {
        Row::new().with("balance", v)
    }

    fn tiny(spill: bool) -> LogStore {
        LogStore::with_config(LogStoreConfig {
            segment_records: 4,
            compact_watermark: 3,
            spill,
        })
    }

    #[test]
    fn insert_commit_read_cycle() {
        let store = LogStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(50));
        assert!(store.get_latest_committed("accounts", id).is_none());
        assert_eq!(
            store
                .get_latest_any("accounts", id)
                .unwrap()
                .get_int("balance"),
            Some(50)
        );
        store.commit(TxnToken(1), Timestamp(1));
        assert_eq!(
            store
                .get_latest_committed("accounts", id)
                .unwrap()
                .get_int("balance"),
            Some(50)
        );
        assert_eq!(store.version_count(), 1);
        assert_eq!(store.committed_row_count("accounts"), 1);
    }

    #[test]
    fn update_requires_existing_row_and_table() {
        let store = LogStore::new();
        store.create_table("accounts");
        let err = store
            .update("accounts", TxnToken(1), RowId(99), balance_row(1))
            .unwrap_err();
        assert!(matches!(err, StorageError::NoSuchRow(_, _)));
        let err = store
            .update("missing", TxnToken(1), RowId(0), balance_row(1))
            .unwrap_err();
        assert!(matches!(err, StorageError::NoSuchTable(_)));
        let err = store.delete("missing", TxnToken(1), RowId(0)).unwrap_err();
        assert!(matches!(err, StorageError::NoSuchTable(_)));
    }

    #[test]
    fn abort_unlinks_versions_and_keeps_the_row_slot() {
        let store = LogStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(100));
        store.commit(TxnToken(1), Timestamp(1));
        store
            .update("accounts", TxnToken(2), id, balance_row(999))
            .unwrap();
        store.abort(TxnToken(2));
        assert_eq!(
            store
                .get_latest_any("accounts", id)
                .unwrap()
                .get_int("balance"),
            Some(100)
        );
        assert!(store.writes_of(TxnToken(2)).is_empty());
        assert_eq!(store.version_count(), 1);

        // A row whose only version aborted keeps its (empty) slot: a later
        // update through the same id succeeds, exactly like an empty chain.
        let ghost = store.insert("accounts", TxnToken(3), balance_row(5));
        store.abort(TxnToken(3));
        assert!(store.get_latest_any("accounts", ghost).is_none());
        assert!(store.row_ids("accounts").contains(&ghost));
        store
            .update("accounts", TxnToken(4), ghost, balance_row(6))
            .unwrap();
        store.commit(TxnToken(4), Timestamp(2));
        assert_eq!(
            store
                .get_latest_committed("accounts", ghost)
                .unwrap()
                .get_int("balance"),
            Some(6)
        );
    }

    #[test]
    fn compaction_reclaims_aborted_records_and_preserves_reads() {
        let store = tiny(false);
        let id = store.insert("t", TxnToken(1), balance_row(1));
        store.commit(TxnToken(1), Timestamp(1));
        // Burn through aborted versions until the watermark trips.
        for round in 0..5u64 {
            let txn = TxnToken(10 + round);
            store.update("t", txn, id, balance_row(-1)).unwrap();
            store.update("t", txn, id, balance_row(-2)).unwrap();
            store.abort(txn);
        }
        assert!(
            store.dead_record_count() < 3,
            "watermark should have compacted: {} dead",
            store.dead_record_count()
        );
        store.update("t", TxnToken(99), id, balance_row(2)).unwrap();
        store.commit(TxnToken(99), Timestamp(5));
        assert_eq!(
            store
                .get_latest_committed("t", id)
                .unwrap()
                .get_int("balance"),
            Some(2)
        );
        // Historical reads survive compaction.
        assert_eq!(
            store
                .get_committed_as_of("t", id, Timestamp(1))
                .unwrap()
                .get_int("balance"),
            Some(1)
        );
        assert_eq!(store.version_count(), 2);
    }

    #[test]
    fn commit_spanning_segments_and_pending_remap() {
        let store = tiny(false);
        // One transaction writes enough to span several 4-record segments,
        // while another aborts in between to force a compaction that must
        // remap the first transaction's pending pointers.
        let id = store.insert("t", TxnToken(1), balance_row(0));
        store.commit(TxnToken(1), Timestamp(1));
        for i in 0..6 {
            store.update("t", TxnToken(2), id, balance_row(i)).unwrap();
        }
        for round in 0..3u64 {
            let txn = TxnToken(50 + round);
            store.update("t", txn, id, balance_row(-1)).unwrap();
            store.abort(txn); // third abort trips the watermark
        }
        assert!(store.segment_count() >= 1);
        store.commit(TxnToken(2), Timestamp(2));
        assert_eq!(
            store
                .get_latest_committed("t", id)
                .unwrap()
                .get_int("balance"),
            Some(5)
        );
        assert_eq!(store.version_count(), 7);
    }

    #[test]
    fn snapshot_and_predicate_scans() {
        let store = tiny(false);
        let active = RowPredicate::new("employees", Condition::eq("active", true));
        let e1 = store.insert("employees", TxnToken(1), Row::new().with("active", true));
        store.insert("employees", TxnToken(1), Row::new().with("active", false));
        store.commit(TxnToken(1), Timestamp(1));
        store.insert("employees", TxnToken(2), Row::new().with("active", true));

        let committed = store.scan_latest_committed(&active);
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].0, e1);
        assert_eq!(store.scan_latest_any(&active).len(), 2);
        assert_eq!(
            store.scan_visible(&active, TxnToken(3), Timestamp(1)).len(),
            1
        );
        assert_eq!(
            store.scan_visible(&active, TxnToken(2), Timestamp(1)).len(),
            2
        );

        store.commit(TxnToken(2), Timestamp(2));
        let snap1 = store.snapshot(Timestamp(1));
        assert_eq!(snap1.count(&active), 1);
        let snap2 = store.snapshot(Timestamp(2));
        assert_eq!(snap2.count(&active), 2);
    }

    #[test]
    fn first_committer_conflict_detection() {
        let store = LogStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(100));
        store.commit(TxnToken(1), Timestamp(1));
        store
            .update("accounts", TxnToken(2), id, balance_row(120))
            .unwrap();
        store
            .update("accounts", TxnToken(3), id, balance_row(130))
            .unwrap();
        assert!(store.has_foreign_uncommitted_on_writes(TxnToken(2)));
        store.commit(TxnToken(2), Timestamp(2));
        assert_eq!(
            store.first_committer_conflict(TxnToken(3), Timestamp(1)),
            Some(("accounts".to_string(), id))
        );
        assert!(store
            .first_committer_conflict(TxnToken(9), Timestamp(0))
            .is_none());
    }

    // Spilling is a no-op off unix (no positioned IO), so these two
    // tests only make sense there.
    #[cfg(unix)]
    #[test]
    fn spill_round_trips_sealed_segments() {
        let store = tiny(true);
        let mut ids = Vec::new();
        for i in 0..10 {
            ids.push(
                store.insert(
                    "t",
                    TxnToken(1),
                    Row::new()
                        .with("balance", i)
                        .with("owner", format!("user-{i}").as_str())
                        .with("active", i % 2 == 0)
                        .with("note", ColumnValue::Null),
                ),
            );
        }
        store.commit(TxnToken(1), Timestamp(1));
        // 10 records at 4 per segment: at least two sealed, bytes spilled.
        assert!(store.spilled_bytes() > 0, "sealed segments should spill");
        for (i, id) in ids.iter().enumerate() {
            let row = store.get_latest_committed("t", *id).unwrap();
            assert_eq!(row.get_int("balance"), Some(i as i64));
            assert_eq!(row.get_text("owner"), Some(format!("user-{i}").as_str()));
            assert_eq!(row.get_bool("active"), Some(i % 2 == 0));
            assert!(row.get("note").unwrap().is_null());
        }
        // Tombstones never spill and still read as deletions.
        store.delete("t", TxnToken(2), ids[0]).unwrap();
        store.commit(TxnToken(2), Timestamp(2));
        assert!(store.get_latest_committed("t", ids[0]).is_none());
        assert_eq!(store.committed_row_count("t"), 9);
    }

    #[cfg(unix)]
    #[test]
    fn compaction_spills_carried_over_payloads() {
        let store = LogStore::with_config(LogStoreConfig {
            segment_records: 4,
            compact_watermark: 2,
            spill: true,
        });
        // Three live rows plus one abort fill segment 0; two more live
        // rows land in segment 1 (inline, segment still open).
        let mut ids: Vec<RowId> = (0..3)
            .map(|i| store.insert("t", TxnToken(1), balance_row(i)))
            .collect();
        store
            .update("t", TxnToken(10), ids[0], balance_row(-1))
            .unwrap();
        store.abort(TxnToken(10));
        ids.push(store.insert("t", TxnToken(1), balance_row(3)));
        ids.push(store.insert("t", TxnToken(1), balance_row(4)));
        store.commit(TxnToken(1), Timestamp(1));
        let before = store.spilled_bytes();
        assert!(before > 0, "sealing segment 0 should have spilled");

        // A second abort trips the watermark; the repack packs the five
        // live records as [4 sealed, 1 open], and the inline record
        // carried into the sealed segment must spill there too.
        store
            .update("t", TxnToken(11), ids[1], balance_row(-2))
            .unwrap();
        store.abort(TxnToken(11));
        assert_eq!(
            store.dead_record_count(),
            0,
            "watermark should have compacted"
        );
        assert!(
            store.spilled_bytes() > before,
            "compaction-sealed segments must spill their inline payloads"
        );
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(
                store
                    .get_latest_committed("t", *id)
                    .unwrap()
                    .get_int("balance"),
                Some(i as i64),
                "row {i} after compaction + spill"
            );
        }
    }

    #[test]
    fn ordered_index_backfills_and_tracks_writes() {
        let store = tiny(false);
        // Rows exist before the index: create_index must backfill.
        let a = store.insert("t", TxnToken(1), balance_row(30));
        let b = store.insert("t", TxnToken(1), balance_row(10));
        store.commit(TxnToken(1), Timestamp(1));
        store.create_index("t", "balance");
        assert_eq!(
            StorageBackend::indexed_column(&store, "t").as_deref(),
            Some("balance")
        );

        let all = store.scan_range(
            "t",
            "balance",
            &KeyInterval::everything(),
            ScanView::LatestCommitted,
        );
        assert_eq!(
            all.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![b, a],
            "ascending (key, row id) order"
        );
        let low = store.scan_range(
            "t",
            "balance",
            &KeyInterval::at_most(15),
            ScanView::LatestCommitted,
        );
        assert_eq!(low.len(), 1);
        assert_eq!(low[0].0, b);

        // Maintained through update/abort, including across segment seals.
        store.update("t", TxnToken(2), a, balance_row(5)).unwrap();
        let dirty = store.scan_range(
            "t",
            "balance",
            &KeyInterval::at_most(15),
            ScanView::LatestAny,
        );
        assert_eq!(
            dirty.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![a, b]
        );
        store.abort(TxnToken(2));
        let after = store.scan_range(
            "t",
            "balance",
            &KeyInterval::at_most(15),
            ScanView::LatestAny,
        );
        assert_eq!(after.iter().map(|(id, _)| *id).collect::<Vec<_>>(), vec![b]);

        // Plain scans over an indexed table come back in key order too.
        let pred = RowPredicate::whole_table("t");
        let scanned = store.scan_latest_committed(&pred);
        assert_eq!(
            scanned.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![b, a]
        );
    }

    #[test]
    fn scan_range_survives_compaction_and_spill() {
        let store = LogStore::with_config(LogStoreConfig {
            segment_records: 4,
            compact_watermark: 2,
            spill: true,
        });
        store.create_index("t", "balance");
        let ids: Vec<RowId> = (0..6)
            .map(|i| store.insert("t", TxnToken(1), balance_row(i * 10)))
            .collect();
        store.commit(TxnToken(1), Timestamp(1));
        // Trip compaction with aborted updates.
        for round in 0..2u64 {
            let txn = TxnToken(20 + round);
            store.update("t", txn, ids[0], balance_row(-5)).unwrap();
            store.abort(txn);
        }
        assert_eq!(
            store.dead_record_count(),
            0,
            "watermark should have compacted"
        );
        let mid = store.scan_range(
            "t",
            "balance",
            &KeyInterval::range(Some(10), Some(30)),
            ScanView::LatestCommitted,
        );
        assert_eq!(
            mid.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![ids[1], ids[2], ids[3]]
        );
        // Historical view through the same entry point.
        let asof = store.scan_range(
            "t",
            "balance",
            &KeyInterval::everything(),
            ScanView::CommittedAsOf(Timestamp(1)),
        );
        assert_eq!(asof.len(), 6);
        // Empty interval is empty without touching the index.
        assert!(store
            .scan_range("t", "balance", &KeyInterval::empty(), ScanView::LatestAny)
            .is_empty());
        // Unindexed column falls back to a full pass with the same contract.
        let fallback = store.scan_range(
            "t",
            "missing",
            &KeyInterval::everything(),
            ScanView::LatestAny,
        );
        assert!(fallback.is_empty());
    }

    #[test]
    fn row_codec_round_trips() {
        let row = Row::new()
            .with("a", -42)
            .with("b", "héllo")
            .with("c", true)
            .with("d", ColumnValue::Null);
        assert_eq!(decode_row(&encode_row(&row)), Some(row));
        assert_eq!(decode_row(&encode_row(&Row::new())), Some(Row::new()));
        assert_eq!(decode_row(&[1, 2, 3]), None);
    }

    #[test]
    fn row_ids_are_sequential_per_table_and_sorted() {
        let store = tiny(false);
        let a0 = store.insert("a", TxnToken(1), balance_row(0));
        let b0 = store.insert("b", TxnToken(1), balance_row(0));
        let a1 = store.insert("a", TxnToken(1), balance_row(0));
        assert_eq!((a0, b0, a1), (RowId(0), RowId(0), RowId(1)));
        assert_eq!(store.row_ids("a"), vec![RowId(0), RowId(1)]);
        assert_eq!(store.tables(), vec!["a".to_string(), "b".to_string()]);
        assert!(store.row_ids("missing").is_empty());
    }

    #[test]
    fn debug_and_config_accessors() {
        let store = tiny(true);
        assert_eq!(store.config().segment_records, 4);
        assert_eq!(store.backend_name(), "logstore");
        let text = format!("{store:?}");
        assert!(text.contains("LogStore"));
    }

    #[test]
    fn spill_write_failure_is_counted_and_panics() {
        let store = tiny(true);
        store.fail_next_spill_write();
        // The 5th insert seals segment 0, whose spill hits the injected
        // IO error: the failure must surface, never be swallowed.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for i in 0..5 {
                store.insert("t", TxnToken(1), balance_row(i));
            }
        }));
        assert!(
            result.is_err(),
            "an injected spill write failure must surface as a panic"
        );
        assert_eq!(store.spill_failure_count(), 1);
    }

    fn durable_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "critique-logstore-test-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_empty_store_recovers_empty() {
        let dir = durable_dir("empty");
        drop(LogStore::open_durable(&dir, LogStoreConfig::default()).unwrap());
        let store = LogStore::recover(&dir).unwrap();
        assert!(store.tables().is_empty());
        let id = store.insert("t", TxnToken(1), balance_row(1));
        assert_eq!(id, RowId(0));
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_round_trip_recovers_committed_state_and_aborts_losers() {
        let dir = durable_dir("round-trip");
        let cfg = LogStoreConfig {
            segment_records: 4,
            compact_watermark: 64,
            spill: false,
        };
        let (a, b);
        {
            let store = LogStore::open_durable(&dir, cfg).unwrap();
            a = store.insert("accounts", TxnToken(1), balance_row(10));
            b = store.insert("accounts", TxnToken(1), balance_row(20));
            store.commit(TxnToken(1), Timestamp(5));
            store.create_index("accounts", "balance");
            store
                .update("accounts", TxnToken(2), a, balance_row(11))
                .unwrap();
            store.commit(TxnToken(2), Timestamp(7));
            store.delete("accounts", TxnToken(3), b).unwrap();
            store.commit(TxnToken(3), Timestamp(8));
            // Still in flight at the "crash": must be aborted by recovery.
            store
                .update("accounts", TxnToken(4), a, balance_row(999))
                .unwrap();
            assert!(store.fsync_count() >= 3, "each writing commit fsyncs");
        }
        let store = LogStore::recover(&dir).unwrap();
        assert_eq!(store.config().segment_records, 4, "manifest config wins");
        assert_eq!(
            store
                .get_latest_committed("accounts", a)
                .unwrap()
                .get_int("balance"),
            Some(11)
        );
        assert_eq!(
            store
                .get_committed_as_of("accounts", a, Timestamp(5))
                .unwrap()
                .get_int("balance"),
            Some(10),
            "historical reads survive recovery"
        );
        assert!(
            store.get_latest_committed("accounts", b).is_none(),
            "tombstone survives recovery"
        );
        assert_eq!(store.committed_row_count("accounts"), 1);
        assert!(
            store.writes_of(TxnToken(4)).is_empty(),
            "the commit-less writer lost the crash"
        );
        assert_eq!(
            store
                .get_latest_any("accounts", a)
                .unwrap()
                .get_int("balance"),
            Some(11),
            "the loser's record is unlinked"
        );
        assert_eq!(
            StorageBackend::indexed_column(&store, "accounts").as_deref(),
            Some("balance")
        );
        assert_eq!(
            store.scan_range(
                "accounts",
                "balance",
                &KeyInterval::everything(),
                ScanView::LatestCommitted,
            ),
            vec![(a, balance_row(11))],
            "the ordered index view is rebuilt"
        );
        assert_eq!(store.last_commit_ts(), Some(Timestamp(8)));
        // The row-id allocator continues where it left off, and a second
        // crash/recover cycle sees the post-recovery writes.
        let c = store.insert("accounts", TxnToken(9), balance_row(30));
        assert_eq!(c, RowId(2));
        store.commit(TxnToken(9), Timestamp(9));
        drop(store);
        let store = LogStore::recover(&dir).unwrap();
        assert_eq!(
            store
                .get_latest_committed("accounts", c)
                .unwrap()
                .get_int("balance"),
            Some(30)
        );
        assert_eq!(store.last_commit_ts(), Some(Timestamp(9)));
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewrite_on_compact_bounds_disk_and_recovers() {
        let dir = durable_dir("rewrite");
        let cfg = LogStoreConfig {
            segment_records: 4,
            compact_watermark: 3,
            spill: true,
        };
        let (id, ghost);
        {
            let store = LogStore::open_durable(&dir, cfg).unwrap();
            id = store.insert("t", TxnToken(1), balance_row(1));
            store.commit(TxnToken(1), Timestamp(1));
            ghost = store.insert("t", TxnToken(2), balance_row(5));
            store.abort(TxnToken(2));
            for round in 0..5u64 {
                let txn = TxnToken(10 + round);
                store.update("t", txn, id, balance_row(-1)).unwrap();
                store.update("t", txn, id, balance_row(-2)).unwrap();
                store.abort(txn);
            }
            let gen = store.durable_generation().unwrap();
            assert!(gen >= 1, "the watermark should have forced a rewrite");
            // Only the live generation's files remain on disk.
            for entry in fs::read_dir(&dir).unwrap() {
                let name = entry.unwrap().file_name();
                if let Some((g, _)) = parse_wal_name(name.to_str().unwrap()) {
                    assert_eq!(g, gen, "stale generation left behind: {name:?}");
                }
            }
            store.update("t", TxnToken(99), id, balance_row(2)).unwrap();
            store.commit(TxnToken(99), Timestamp(5));
        }
        let store = LogStore::recover(&dir).unwrap();
        assert_eq!(
            store
                .get_latest_committed("t", id)
                .unwrap()
                .get_int("balance"),
            Some(2)
        );
        assert_eq!(
            store
                .get_committed_as_of("t", id, Timestamp(1))
                .unwrap()
                .get_int("balance"),
            Some(1),
            "committed history survives the rewrite"
        );
        assert!(
            store.row_ids("t").contains(&ghost),
            "ghost row slots survive the rewrite via table metadata"
        );
        store
            .update("t", TxnToken(7), ghost, balance_row(6))
            .unwrap();
        store.commit(TxnToken(7), Timestamp(6));
        assert_eq!(
            store
                .get_latest_committed("t", ghost)
                .unwrap()
                .get_int("balance"),
            Some(6)
        );
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }
}
