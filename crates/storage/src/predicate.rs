//! Predicates over rows: the `<search condition>`s of the paper.
//!
//! A [`RowPredicate`] names a table and a condition tree over column
//! values.  It covers both rows currently in the table and "phantom" rows
//! that would satisfy the condition if inserted — the engine uses
//! [`RowPredicate::matches`] to decide whether a write falls inside a
//! predicate a concurrent transaction has read, which is what drives both
//! predicate locking (Table 2) and phantom detection (P3/A3).

use crate::row::Row;
use crate::value::ColumnValue;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Comparison operators usable in a condition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Comparison {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Comparison {
    fn evaluate(&self, ordering: Option<Ordering>, different_types: bool) -> bool {
        match (self, ordering) {
            (Comparison::Eq, Some(Ordering::Equal)) => true,
            (Comparison::Ne, Some(o)) => o != Ordering::Equal,
            (Comparison::Ne, None) => different_types, // incomparable values are not equal
            (Comparison::Lt, Some(Ordering::Less)) => true,
            (Comparison::Le, Some(Ordering::Less | Ordering::Equal)) => true,
            (Comparison::Gt, Some(Ordering::Greater)) => true,
            (Comparison::Ge, Some(Ordering::Greater | Ordering::Equal)) => true,
            _ => false,
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Comparison::Eq => "=",
            Comparison::Ne => "<>",
            Comparison::Lt => "<",
            Comparison::Le => "<=",
            Comparison::Gt => ">",
            Comparison::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A boolean condition over a row.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Condition {
    /// Always true — the whole-table predicate.
    True,
    /// Compare a column against a constant.  Rows lacking the column, or
    /// with an incomparable type, do not satisfy the comparison (SQL
    /// three-valued logic collapsed to false).
    Compare {
        /// Column name.
        column: String,
        /// Operator.
        op: Comparison,
        /// Constant to compare against.
        value: ColumnValue,
    },
    /// Conjunction.
    And(Box<Condition>, Box<Condition>),
    /// Disjunction.
    Or(Box<Condition>, Box<Condition>),
    /// Negation.
    Not(Box<Condition>),
}

impl Condition {
    /// `column op value`.
    pub fn compare(column: &str, op: Comparison, value: impl Into<ColumnValue>) -> Condition {
        Condition::Compare {
            column: column.to_string(),
            op,
            value: value.into(),
        }
    }

    /// `column = value`.
    pub fn eq(column: &str, value: impl Into<ColumnValue>) -> Condition {
        Condition::compare(column, Comparison::Eq, value)
    }

    /// `self AND other`.
    pub fn and(self, other: Condition) -> Condition {
        Condition::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Condition) -> Condition {
        Condition::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    pub fn negate(self) -> Condition {
        Condition::Not(Box::new(self))
    }

    /// Evaluate against a row.
    pub fn matches(&self, row: &Row) -> bool {
        match self {
            Condition::True => true,
            Condition::Compare { column, op, value } => match row.get(column) {
                Some(actual) => {
                    let different_types =
                        std::mem::discriminant(actual) != std::mem::discriminant(value);
                    op.evaluate(actual.compare(value), different_types)
                }
                None => false,
            },
            Condition::And(a, b) => a.matches(row) && b.matches(row),
            Condition::Or(a, b) => a.matches(row) || b.matches(row),
            Condition::Not(inner) => !inner.matches(row),
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::True => write!(f, "TRUE"),
            Condition::Compare { column, op, value } => write!(f, "{column} {op} {value}"),
            Condition::And(a, b) => write!(f, "({a} AND {b})"),
            Condition::Or(a, b) => write!(f, "({a} OR {b})"),
            Condition::Not(inner) => write!(f, "NOT ({inner})"),
        }
    }
}

/// A named predicate over one table.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RowPredicate {
    /// The table the `<search condition>` ranges over.
    pub table: String,
    /// The condition.
    pub condition: Condition,
}

impl RowPredicate {
    /// Create a predicate over `table` with the given condition.
    pub fn new(table: &str, condition: Condition) -> Self {
        RowPredicate {
            table: table.to_string(),
            condition,
        }
    }

    /// The whole-table predicate.
    pub fn whole_table(table: &str) -> Self {
        RowPredicate::new(table, Condition::True)
    }

    /// True when a row of `table` satisfies the predicate.  Rows of other
    /// tables never match.
    pub fn matches(&self, table: &str, row: &Row) -> bool {
        self.table == table && self.condition.matches(row)
    }

    /// A stable display name used when recording predicate reads in
    /// histories (e.g. `"employees[active = true]"`).
    pub fn name(&self) -> String {
        format!("{}[{}]", self.table, self.condition)
    }

    /// Two predicates *may overlap* when they range over the same table.
    /// This is the conservative test a predicate lock manager needs: a
    /// precise satisfiability check is unnecessary for the paper's
    /// scenarios, and conservatism only ever blocks more, never less, which
    /// preserves correctness of the locking levels.
    pub fn may_overlap(&self, other: &RowPredicate) -> bool {
        self.table == other.table
    }
}

impl fmt::Display for RowPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn employee(active: bool, hours: i64) -> Row {
        Row::new().with("active", active).with("hours", hours)
    }

    #[test]
    fn comparisons_on_ints() {
        let row = Row::new().with("x", 10);
        assert!(Condition::compare("x", Comparison::Eq, 10).matches(&row));
        assert!(Condition::compare("x", Comparison::Ne, 11).matches(&row));
        assert!(Condition::compare("x", Comparison::Lt, 11).matches(&row));
        assert!(Condition::compare("x", Comparison::Le, 10).matches(&row));
        assert!(Condition::compare("x", Comparison::Gt, 9).matches(&row));
        assert!(Condition::compare("x", Comparison::Ge, 10).matches(&row));
        assert!(!Condition::compare("x", Comparison::Gt, 10).matches(&row));
    }

    #[test]
    fn missing_columns_and_type_mismatches_do_not_match() {
        let row = Row::new().with("x", 10);
        assert!(!Condition::eq("y", 10).matches(&row));
        assert!(!Condition::eq("x", "ten").matches(&row));
        assert!(!Condition::compare("x", Comparison::Lt, "ten").matches(&row));
    }

    #[test]
    fn boolean_combinators() {
        let row = employee(true, 5);
        let active = Condition::eq("active", true);
        let overworked = Condition::compare("hours", Comparison::Gt, 8);
        assert!(active
            .clone()
            .and(overworked.clone().negate())
            .matches(&row));
        assert!(active.clone().or(overworked.clone()).matches(&row));
        assert!(!active.negate().matches(&row));
        assert!(Condition::True.matches(&row));
    }

    #[test]
    fn row_predicate_scopes_to_table() {
        let p = RowPredicate::new("employees", Condition::eq("active", true));
        assert!(p.matches("employees", &employee(true, 3)));
        assert!(!p.matches("employees", &employee(false, 3)));
        assert!(!p.matches("contractors", &employee(true, 3)));
        assert!(p.may_overlap(&RowPredicate::whole_table("employees")));
        assert!(!p.may_overlap(&RowPredicate::whole_table("accounts")));
    }

    #[test]
    fn names_are_stable_and_descriptive() {
        let p = RowPredicate::new(
            "tasks",
            Condition::eq("project", "apollo").and(Condition::compare("hours", Comparison::Le, 8)),
        );
        let name = p.name();
        assert!(name.starts_with("tasks["));
        assert!(name.contains("project = 'apollo'"));
        assert!(name.contains("hours <= 8"));
        assert_eq!(name, p.to_string());
    }

    #[test]
    fn ne_on_incomparable_types_is_true() {
        // x = 10 (Int); compare Ne against a Text constant: values are of
        // different types, hence "not equal".
        let row = Row::new().with("x", 10);
        assert!(Condition::compare("x", Comparison::Ne, "ten").matches(&row));
    }
}
