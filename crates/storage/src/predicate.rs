//! Predicates over rows: the `<search condition>`s of the paper.
//!
//! A [`RowPredicate`] names a table and a condition tree over column
//! values.  It covers both rows currently in the table and "phantom" rows
//! that would satisfy the condition if inserted — the engine uses
//! [`RowPredicate::matches`] to decide whether a write falls inside a
//! predicate a concurrent transaction has read, which is what drives both
//! predicate locking (Table 2) and phantom detection (P3/A3).

use crate::row::Row;
use crate::value::ColumnValue;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;

/// A closed interval over the integer key space of one column, extracted
/// from a [`Condition`] by [`Condition::key_interval`].
///
/// The interval answers one question conservatively: *could a row match
/// the condition with its column value here?*  Two components make the
/// answer sound for SQL's mixed-type rows:
///
/// * an integer range `[lo, hi]` (either end may be infinite) covering
///   every `Int` value a matching row could hold in the column, and
/// * a `covers_untyped` flag: whether a matching row could carry a
///   missing or non-`Int` value in the column.
///
/// Extraction is conservative by construction — it may widen, never
/// narrow — so a non-overlap verdict between two extracted intervals
/// proves no row can satisfy both conditions, while an overlap verdict
/// merely fails to prove disjointness (the caller stays conservative).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct KeyInterval {
    /// Inclusive lower bound; `None` is negative infinity.
    lo: Option<i64>,
    /// Inclusive upper bound; `None` is positive infinity.
    hi: Option<i64>,
    /// True when the integer range is empty (no `Int` value can match).
    int_empty: bool,
    /// True when a row whose column is missing or non-`Int` could match.
    covers_untyped: bool,
}

impl KeyInterval {
    /// Everything: all integers plus untyped rows.  The conservative
    /// fallback for condition shapes the extractor does not analyse.
    pub fn everything() -> Self {
        KeyInterval {
            lo: None,
            hi: None,
            int_empty: false,
            covers_untyped: true,
        }
    }

    /// No integer can match, but untyped rows might (e.g. `col = true`:
    /// only `Bool` rows can satisfy it).
    pub fn untyped_only() -> Self {
        KeyInterval {
            lo: None,
            hi: None,
            int_empty: true,
            covers_untyped: true,
        }
    }

    /// Nothing matches at all.
    pub fn empty() -> Self {
        KeyInterval {
            lo: None,
            hi: None,
            int_empty: true,
            covers_untyped: false,
        }
    }

    /// Exactly the integer `v`.
    pub fn point(v: i64) -> Self {
        KeyInterval {
            lo: Some(v),
            hi: Some(v),
            int_empty: false,
            covers_untyped: false,
        }
    }

    /// All integers `>= v`.
    pub fn at_least(v: i64) -> Self {
        KeyInterval {
            lo: Some(v),
            hi: None,
            int_empty: false,
            covers_untyped: false,
        }
    }

    /// All integers `<= v`.
    pub fn at_most(v: i64) -> Self {
        KeyInterval {
            lo: None,
            hi: Some(v),
            int_empty: false,
            covers_untyped: false,
        }
    }

    /// All integers `> v` (empty when `v` is `i64::MAX`).
    pub fn greater_than(v: i64) -> Self {
        match v.checked_add(1) {
            Some(lo) => KeyInterval::at_least(lo),
            None => KeyInterval::empty(),
        }
    }

    /// All integers `< v` (empty when `v` is `i64::MIN`).
    pub fn less_than(v: i64) -> Self {
        match v.checked_sub(1) {
            Some(hi) => KeyInterval::at_most(hi),
            None => KeyInterval::empty(),
        }
    }

    /// An explicit inclusive range `[lo, hi]`, either end open-ended.
    pub fn range(lo: Option<i64>, hi: Option<i64>) -> Self {
        let int_empty = matches!((lo, hi), (Some(l), Some(h)) if l > h);
        KeyInterval {
            lo: if int_empty { None } else { lo },
            hi: if int_empty { None } else { hi },
            int_empty,
            covers_untyped: false,
        }
    }

    /// Inclusive lower bound (`None` = unbounded).  Meaningless when the
    /// integer range is empty.
    pub fn lo(&self) -> Option<i64> {
        self.lo
    }

    /// Inclusive upper bound (`None` = unbounded).  Meaningless when the
    /// integer range is empty.
    pub fn hi(&self) -> Option<i64> {
        self.hi
    }

    /// True when no integer value lies inside the interval.
    pub fn is_int_empty(&self) -> bool {
        self.int_empty
    }

    /// True when rows with a missing or non-`Int` column value are covered.
    pub fn covers_untyped(&self) -> bool {
        self.covers_untyped
    }

    /// True when the integer `k` lies inside the interval.
    pub fn contains(&self, k: i64) -> bool {
        !self.int_empty && self.lo.is_none_or(|lo| lo <= k) && self.hi.is_none_or(|hi| k <= hi)
    }

    /// True when a column value (or its absence) is covered: integers are
    /// tested against the range, everything else against `covers_untyped`.
    pub fn covers_value(&self, value: Option<&ColumnValue>) -> bool {
        match value {
            Some(ColumnValue::Int(k)) => self.contains(*k),
            _ => self.covers_untyped,
        }
    }

    /// The intersection: covers exactly the values both intervals cover.
    pub fn intersect(&self, other: &KeyInterval) -> KeyInterval {
        let covers_untyped = self.covers_untyped && other.covers_untyped;
        if self.int_empty || other.int_empty {
            return KeyInterval {
                lo: None,
                hi: None,
                int_empty: true,
                covers_untyped,
            };
        }
        let lo = match (self.lo, other.lo) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        let hi = match (self.hi, other.hi) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let mut out = KeyInterval::range(lo, hi);
        out.covers_untyped = covers_untyped;
        out
    }

    /// The hull: the smallest interval covering both inputs (a superset of
    /// the union, hence conservative for `Or`).
    pub fn hull(&self, other: &KeyInterval) -> KeyInterval {
        let covers_untyped = self.covers_untyped || other.covers_untyped;
        let (lo, hi, int_empty) = match (self.int_empty, other.int_empty) {
            (true, true) => (None, None, true),
            (true, false) => (other.lo, other.hi, false),
            (false, true) => (self.lo, self.hi, false),
            (false, false) => {
                let lo = match (self.lo, other.lo) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    _ => None,
                };
                let hi = match (self.hi, other.hi) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    _ => None,
                };
                (lo, hi, false)
            }
        };
        KeyInterval {
            lo,
            hi,
            int_empty,
            covers_untyped,
        }
    }

    /// True when the two intervals could cover a common value: both admit
    /// untyped rows, or their integer ranges intersect.
    pub fn overlaps(&self, other: &KeyInterval) -> bool {
        if self.covers_untyped && other.covers_untyped {
            return true;
        }
        if self.int_empty || other.int_empty {
            return false;
        }
        let lo_le_hi = |lo: Option<i64>, hi: Option<i64>| match (lo, hi) {
            (Some(l), Some(h)) => l <= h,
            _ => true,
        };
        lo_le_hi(self.lo, other.hi) && lo_le_hi(other.lo, self.hi)
    }
}

impl fmt::Display for KeyInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.int_empty {
            write!(f, "∅")?;
        } else {
            match self.lo {
                Some(lo) => write!(f, "[{lo}, ")?,
                None => write!(f, "(-∞, ")?,
            }
            match self.hi {
                Some(hi) => write!(f, "{hi}]")?,
                None => write!(f, "+∞)")?,
            }
        }
        if self.covers_untyped {
            write!(f, "+untyped")?;
        }
        Ok(())
    }
}

/// Comparison operators usable in a condition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Comparison {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Comparison {
    fn evaluate(&self, ordering: Option<Ordering>, different_types: bool) -> bool {
        match (self, ordering) {
            (Comparison::Eq, Some(Ordering::Equal)) => true,
            (Comparison::Ne, Some(o)) => o != Ordering::Equal,
            (Comparison::Ne, None) => different_types, // incomparable values are not equal
            (Comparison::Lt, Some(Ordering::Less)) => true,
            (Comparison::Le, Some(Ordering::Less | Ordering::Equal)) => true,
            (Comparison::Gt, Some(Ordering::Greater)) => true,
            (Comparison::Ge, Some(Ordering::Greater | Ordering::Equal)) => true,
            _ => false,
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Comparison::Eq => "=",
            Comparison::Ne => "<>",
            Comparison::Lt => "<",
            Comparison::Le => "<=",
            Comparison::Gt => ">",
            Comparison::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A boolean condition over a row.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Condition {
    /// Always true — the whole-table predicate.
    True,
    /// Compare a column against a constant.  Rows lacking the column, or
    /// with an incomparable type, do not satisfy the comparison (SQL
    /// three-valued logic collapsed to false).
    Compare {
        /// Column name.
        column: String,
        /// Operator.
        op: Comparison,
        /// Constant to compare against.
        value: ColumnValue,
    },
    /// Conjunction.
    And(Box<Condition>, Box<Condition>),
    /// Disjunction.
    Or(Box<Condition>, Box<Condition>),
    /// Negation.
    Not(Box<Condition>),
}

impl Condition {
    /// `column op value`.
    pub fn compare(column: &str, op: Comparison, value: impl Into<ColumnValue>) -> Condition {
        Condition::Compare {
            column: column.to_string(),
            op,
            value: value.into(),
        }
    }

    /// `column = value`.
    pub fn eq(column: &str, value: impl Into<ColumnValue>) -> Condition {
        Condition::compare(column, Comparison::Eq, value)
    }

    /// `self AND other`.
    pub fn and(self, other: Condition) -> Condition {
        Condition::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Condition) -> Condition {
        Condition::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    pub fn negate(self) -> Condition {
        Condition::Not(Box::new(self))
    }

    /// Extract the interval of `column` values a matching row could hold.
    ///
    /// The extraction is **sound**: for every row `r` with
    /// `self.matches(r)`, the returned interval covers `r`'s value in
    /// `column` (via [`KeyInterval::covers_value`]).  It is precise for
    /// conjunctions of integer comparisons over `column` — the shapes a
    /// range scan produces — and falls back to [`KeyInterval::everything`]
    /// for anything it does not analyse (`Not` subtrees, other columns),
    /// so conservatism is preserved, never lost.
    pub fn key_interval(&self, column: &str) -> KeyInterval {
        match self {
            Condition::True => KeyInterval::everything(),
            Condition::Compare {
                column: c,
                op,
                value,
            } if c == column => match value {
                ColumnValue::Int(v) => match op {
                    Comparison::Eq => KeyInterval::point(*v),
                    Comparison::Lt => KeyInterval::less_than(*v),
                    Comparison::Le => KeyInterval::at_most(*v),
                    Comparison::Gt => KeyInterval::greater_than(*v),
                    Comparison::Ge => KeyInterval::at_least(*v),
                    // `col <> 5` admits every integer but 5 plus rows of
                    // other types — not an interval; stay conservative.
                    Comparison::Ne => KeyInterval::everything(),
                },
                // A non-Int constant: `col = true` can only be satisfied
                // by non-Int rows (cross-type comparisons are false)…
                _ => match op {
                    // …except `<>`, which *is* satisfied by every Int row
                    // (incomparable values are "not equal").
                    Comparison::Ne => KeyInterval::everything(),
                    _ => KeyInterval::untyped_only(),
                },
            },
            // A comparison on some other column constrains this one not
            // at all.
            Condition::Compare { .. } => KeyInterval::everything(),
            Condition::And(a, b) => a.key_interval(column).intersect(&b.key_interval(column)),
            Condition::Or(a, b) => a.key_interval(column).hull(&b.key_interval(column)),
            // `NOT (col <= 5)` could be refined, but negation of the
            // untyped flag is subtle (a missing column fails `col <= 5`
            // and so *satisfies* the negation); whole-line fallback keeps
            // the extraction trivially sound.
            Condition::Not(_) => KeyInterval::everything(),
        }
    }

    /// Every column mentioned by a comparison anywhere in the tree.
    pub fn constrained_columns(&self) -> BTreeSet<&str> {
        fn walk<'a>(cond: &'a Condition, out: &mut BTreeSet<&'a str>) {
            match cond {
                Condition::True => {}
                Condition::Compare { column, .. } => {
                    out.insert(column.as_str());
                }
                Condition::And(a, b) | Condition::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Condition::Not(inner) => walk(inner, out),
            }
        }
        let mut out = BTreeSet::new();
        walk(self, &mut out);
        out
    }

    /// Evaluate against a row.
    pub fn matches(&self, row: &Row) -> bool {
        match self {
            Condition::True => true,
            Condition::Compare { column, op, value } => match row.get(column) {
                Some(actual) => {
                    let different_types =
                        std::mem::discriminant(actual) != std::mem::discriminant(value);
                    op.evaluate(actual.compare(value), different_types)
                }
                None => false,
            },
            Condition::And(a, b) => a.matches(row) && b.matches(row),
            Condition::Or(a, b) => a.matches(row) || b.matches(row),
            Condition::Not(inner) => !inner.matches(row),
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::True => write!(f, "TRUE"),
            Condition::Compare { column, op, value } => write!(f, "{column} {op} {value}"),
            Condition::And(a, b) => write!(f, "({a} AND {b})"),
            Condition::Or(a, b) => write!(f, "({a} OR {b})"),
            Condition::Not(inner) => write!(f, "NOT ({inner})"),
        }
    }
}

/// A named predicate over one table.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RowPredicate {
    /// The table the `<search condition>` ranges over.
    pub table: String,
    /// The condition.
    pub condition: Condition,
}

impl RowPredicate {
    /// Create a predicate over `table` with the given condition.
    pub fn new(table: &str, condition: Condition) -> Self {
        RowPredicate {
            table: table.to_string(),
            condition,
        }
    }

    /// The whole-table predicate.
    pub fn whole_table(table: &str) -> Self {
        RowPredicate::new(table, Condition::True)
    }

    /// True when a row of `table` satisfies the predicate.  Rows of other
    /// tables never match.
    pub fn matches(&self, table: &str, row: &Row) -> bool {
        self.table == table && self.condition.matches(row)
    }

    /// A stable display name used when recording predicate reads in
    /// histories (e.g. `"employees[active = true]"`).
    pub fn name(&self) -> String {
        format!("{}[{}]", self.table, self.condition)
    }

    /// Two predicates *may overlap* when some row could satisfy both.
    ///
    /// The test is interval-based: for every column either condition
    /// constrains, the two extracted [`KeyInterval`]s must intersect — a
    /// row satisfying both conditions carries, in each such column, a
    /// value both intervals cover, so provably disjoint ranges (`hours <
    /// 5` vs `hours > 100`) report no overlap and need not conflict.
    /// Conservatism is preserved, never lost: extraction only ever widens
    /// (arbitrary trees fall back to the whole key line), so a `true`
    /// verdict may be a false positive but a `false` verdict is proof of
    /// disjointness — the lock manager blocks more than necessary at
    /// worst, which keeps the locking levels correct.
    pub fn may_overlap(&self, other: &RowPredicate) -> bool {
        if self.table != other.table {
            return false;
        }
        let mut columns = self.condition.constrained_columns();
        columns.extend(other.condition.constrained_columns());
        columns.into_iter().all(|column| {
            self.condition
                .key_interval(column)
                .overlaps(&other.condition.key_interval(column))
        })
    }

    /// The column (with its interval) a predicate lock manager should key
    /// this predicate under: the first constrained column whose extracted
    /// interval excludes untyped rows — every matching row then has an
    /// integer value for it inside the interval, so the predicate can live
    /// in an ordered interval map and be skipped by non-overlapping
    /// probes.  `None` means the predicate has no such column (the
    /// whole-table fallback) and must be checked against everything.
    pub fn index_hint(&self) -> Option<(String, KeyInterval)> {
        self.condition
            .constrained_columns()
            .into_iter()
            .map(|column| (column, self.condition.key_interval(column)))
            .find(|(_, interval)| !interval.covers_untyped())
            .map(|(column, interval)| (column.to_string(), interval))
    }
}

impl fmt::Display for RowPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn employee(active: bool, hours: i64) -> Row {
        Row::new().with("active", active).with("hours", hours)
    }

    #[test]
    fn comparisons_on_ints() {
        let row = Row::new().with("x", 10);
        assert!(Condition::compare("x", Comparison::Eq, 10).matches(&row));
        assert!(Condition::compare("x", Comparison::Ne, 11).matches(&row));
        assert!(Condition::compare("x", Comparison::Lt, 11).matches(&row));
        assert!(Condition::compare("x", Comparison::Le, 10).matches(&row));
        assert!(Condition::compare("x", Comparison::Gt, 9).matches(&row));
        assert!(Condition::compare("x", Comparison::Ge, 10).matches(&row));
        assert!(!Condition::compare("x", Comparison::Gt, 10).matches(&row));
    }

    #[test]
    fn missing_columns_and_type_mismatches_do_not_match() {
        let row = Row::new().with("x", 10);
        assert!(!Condition::eq("y", 10).matches(&row));
        assert!(!Condition::eq("x", "ten").matches(&row));
        assert!(!Condition::compare("x", Comparison::Lt, "ten").matches(&row));
    }

    #[test]
    fn boolean_combinators() {
        let row = employee(true, 5);
        let active = Condition::eq("active", true);
        let overworked = Condition::compare("hours", Comparison::Gt, 8);
        assert!(active
            .clone()
            .and(overworked.clone().negate())
            .matches(&row));
        assert!(active.clone().or(overworked.clone()).matches(&row));
        assert!(!active.negate().matches(&row));
        assert!(Condition::True.matches(&row));
    }

    #[test]
    fn row_predicate_scopes_to_table() {
        let p = RowPredicate::new("employees", Condition::eq("active", true));
        assert!(p.matches("employees", &employee(true, 3)));
        assert!(!p.matches("employees", &employee(false, 3)));
        assert!(!p.matches("contractors", &employee(true, 3)));
        assert!(p.may_overlap(&RowPredicate::whole_table("employees")));
        assert!(!p.may_overlap(&RowPredicate::whole_table("accounts")));
    }

    #[test]
    fn names_are_stable_and_descriptive() {
        let p = RowPredicate::new(
            "tasks",
            Condition::eq("project", "apollo").and(Condition::compare("hours", Comparison::Le, 8)),
        );
        let name = p.name();
        assert!(name.starts_with("tasks["));
        assert!(name.contains("project = 'apollo'"));
        assert!(name.contains("hours <= 8"));
        assert_eq!(name, p.to_string());
    }

    #[test]
    fn ne_on_incomparable_types_is_true() {
        // x = 10 (Int); compare Ne against a Text constant: values are of
        // different types, hence "not equal".
        let row = Row::new().with("x", 10);
        assert!(Condition::compare("x", Comparison::Ne, "ten").matches(&row));
    }

    #[test]
    fn interval_extraction_for_comparisons() {
        let lt = Condition::compare("hours", Comparison::Lt, 5).key_interval("hours");
        assert!(lt.contains(4) && !lt.contains(5) && !lt.covers_untyped());
        let ge = Condition::compare("hours", Comparison::Ge, 100).key_interval("hours");
        assert!(ge.contains(100) && !ge.contains(99) && ge.hi().is_none());
        let eq = Condition::eq("hours", 8).key_interval("hours");
        assert_eq!(eq, KeyInterval::point(8));
        // A conjunction narrows; a disjunction hulls.
        let band = Condition::compare("hours", Comparison::Ge, 10)
            .and(Condition::compare("hours", Comparison::Le, 20))
            .key_interval("hours");
        assert_eq!(band, KeyInterval::range(Some(10), Some(20)));
        let either = Condition::eq("hours", 1)
            .or(Condition::eq("hours", 9))
            .key_interval("hours");
        assert!(either.contains(1) && either.contains(9) && either.contains(5));
        assert!(!either.contains(0) && !either.contains(10));
        // Other columns, negations, and Ne fall back to everything.
        assert_eq!(
            Condition::eq("other", 3).key_interval("hours"),
            KeyInterval::everything()
        );
        assert_eq!(
            Condition::eq("hours", 3).negate().key_interval("hours"),
            KeyInterval::everything()
        );
        assert_eq!(
            Condition::compare("hours", Comparison::Ne, 3).key_interval("hours"),
            KeyInterval::everything()
        );
        // Non-Int constants exclude the integer line except under Ne.
        let boolean = Condition::eq("active", true).key_interval("active");
        assert!(boolean.is_int_empty() && boolean.covers_untyped());
        assert_eq!(
            Condition::compare("active", Comparison::Ne, true).key_interval("active"),
            KeyInterval::everything()
        );
    }

    #[test]
    fn interval_edge_cases_at_the_ends_of_the_key_line() {
        let below_min = Condition::compare("x", Comparison::Lt, i64::MIN).key_interval("x");
        assert!(below_min.is_int_empty());
        let above_max = Condition::compare("x", Comparison::Gt, i64::MAX).key_interval("x");
        assert!(above_max.is_int_empty());
        assert!(!below_min.overlaps(&above_max));
        // An empty conjunction band is empty and overlaps nothing typed.
        let empty = Condition::compare("x", Comparison::Gt, 10)
            .and(Condition::compare("x", Comparison::Lt, 10))
            .key_interval("x");
        assert!(empty.is_int_empty());
        assert!(!empty.overlaps(&KeyInterval::point(10)));
    }

    #[test]
    fn disjoint_ranges_no_longer_overlap() {
        // The motivating false conflict: `hours < 5` vs `hours > 100` on
        // one table used to conflict under the table-granular test.
        let a = RowPredicate::new("tasks", Condition::compare("hours", Comparison::Lt, 5));
        let b = RowPredicate::new("tasks", Condition::compare("hours", Comparison::Gt, 100));
        assert!(!a.may_overlap(&b));
        assert!(!b.may_overlap(&a));
        // Touching ranges do overlap.
        let c = RowPredicate::new("tasks", Condition::compare("hours", Comparison::Le, 5));
        let d = RowPredicate::new("tasks", Condition::compare("hours", Comparison::Ge, 5));
        assert!(c.may_overlap(&d));
        // Disjoint equality points on a second column also stay apart.
        let r0 = RowPredicate::new("accounts", Condition::eq("region", 0));
        let r1 = RowPredicate::new("accounts", Condition::eq("region", 1));
        assert!(!r0.may_overlap(&r1));
        assert!(r0.may_overlap(&r0.clone()));
    }

    #[test]
    fn whole_table_fallback_still_conflicts_with_everything_on_the_table() {
        let whole = RowPredicate::whole_table("tasks");
        let narrow = RowPredicate::new("tasks", Condition::eq("hours", 3));
        let negated = RowPredicate::new("tasks", Condition::eq("hours", 9).negate());
        assert!(whole.may_overlap(&narrow));
        assert!(narrow.may_overlap(&whole));
        assert!(negated.may_overlap(&narrow));
        assert!(!whole.may_overlap(&RowPredicate::whole_table("accounts")));
    }

    #[test]
    fn index_hint_names_the_first_typed_column() {
        let banded = RowPredicate::new(
            "tasks",
            Condition::eq("project", "apollo").and(Condition::compare("hours", Comparison::Le, 8)),
        );
        let (column, interval) = banded.index_hint().expect("hours is typed");
        assert_eq!(column, "hours");
        assert_eq!(interval, KeyInterval::at_most(8));
        // The whole-table predicate and non-Int conditions have no hint.
        assert!(RowPredicate::whole_table("tasks").index_hint().is_none());
        assert!(RowPredicate::new("tasks", Condition::eq("active", true))
            .index_hint()
            .is_none());
    }

    mod extraction_properties {
        use super::*;
        use proptest::prelude::*;

        /// One comparison (or `True`) decoded from an integer seed —
        /// the offline proptest shim has no `prop_oneof!`, so the choice
        /// points are packed into selector bits.
        fn build_leaf((selector, value): (u64, i64)) -> Condition {
            if selector % 8 == 0 {
                return Condition::True;
            }
            let column = if (selector >> 3) & 1 == 0 { "a" } else { "b" };
            let op = match (selector >> 4) % 6 {
                0 => Comparison::Eq,
                1 => Comparison::Ne,
                2 => Comparison::Lt,
                3 => Comparison::Le,
                4 => Comparison::Gt,
                _ => Comparison::Ge,
            };
            let value = match (selector >> 7) % 6 {
                0..=3 => ColumnValue::Int(value),
                4 => ColumnValue::Bool(value & 1 == 0),
                _ => ColumnValue::Text("t".into()),
            };
            Condition::Compare {
                column: column.to_string(),
                op,
                value,
            }
        }

        /// Fold decoded leaves into a tree with And/Or/Not combinators
        /// picked from the selector bits.
        fn build_condition(nodes: &[(u64, i64)]) -> Condition {
            let mut acc = build_leaf(nodes[0]);
            for &node in &nodes[1..] {
                let next = build_leaf(node);
                acc = match (node.0 >> 12) % 4 {
                    0 | 1 => Condition::And(Box::new(acc), Box::new(next)),
                    2 => Condition::Or(Box::new(acc), Box::new(next)),
                    _ => Condition::Not(Box::new(Condition::Or(Box::new(acc), Box::new(next)))),
                };
            }
            acc
        }

        /// A condition tree over columns `a`/`b` with mixed-type constants.
        fn condition_strategy() -> impl Strategy<Value = Condition> {
            prop::collection::vec((0u64..(1 << 15), -50i64..50), 1..6)
                .prop_map(|nodes| build_condition(&nodes))
        }

        fn build_cell((selector, value): (u64, i64)) -> Option<ColumnValue> {
            match selector {
                0..=3 => Some(ColumnValue::Int(value)),
                4 => Some(ColumnValue::Bool(value & 1 == 0)),
                5 => Some(ColumnValue::Text("t".into())),
                _ => None,
            }
        }

        /// A row giving columns `a`/`b` integer, non-integer, or missing
        /// values.
        fn row_strategy() -> impl Strategy<Value = Row> {
            ((0u64..7, -60i64..60), (0u64..7, -60i64..60)).prop_map(|(a, b)| {
                let mut row = Row::new();
                if let Some(value) = build_cell(a) {
                    row = row.with("a", value);
                }
                if let Some(value) = build_cell(b) {
                    row = row.with("b", value);
                }
                row
            })
        }

        proptest! {
            /// Soundness: a matching row's column value always lies inside
            /// the extracted interval.
            #[test]
            fn extraction_covers_every_matching_row(
                cond in condition_strategy(),
                row in row_strategy(),
            ) {
                if cond.matches(&row) {
                    for column in ["a", "b"] {
                        let interval = cond.key_interval(column);
                        prop_assert!(
                            interval.covers_value(row.get(column)),
                            "{cond} matched but {} not covered by {interval}",
                            row.get(column).map(|v| v.to_string()).unwrap_or_default(),
                        );
                    }
                }
            }

            /// Disjointness: when two predicates report no overlap, no row
            /// satisfies both conditions.
            #[test]
            fn non_overlap_is_proof_of_disjointness(
                a in condition_strategy(),
                b in condition_strategy(),
                row in row_strategy(),
            ) {
                let pa = RowPredicate::new("t", a);
                let pb = RowPredicate::new("t", b);
                if !pa.may_overlap(&pb) {
                    prop_assert!(
                        !(pa.condition.matches(&row) && pb.condition.matches(&row)),
                        "{} and {} disjoint yet both matched a row",
                        pa.name(),
                        pb.name(),
                    );
                }
            }

            /// `may_overlap` is symmetric.
            #[test]
            fn overlap_is_symmetric(a in condition_strategy(), b in condition_strategy()) {
                let pa = RowPredicate::new("t", a);
                let pb = RowPredicate::new("t", b);
                prop_assert_eq!(pa.may_overlap(&pb), pb.may_overlap(&pa));
            }
        }
    }
}
