//! Version chains: the multi-version representation of a single row.
//!
//! Two representations live here:
//!
//! * [`VersionChain`] — the original `Vec`-backed chain (oldest first).  It
//!   remains the *reference model*: the shard-stress property tests replay
//!   the sharded store against a single-map model built on it, and its
//!   visibility methods are the executable specification the lock-free
//!   representation must match.
//! * [`ChainHead`] / [`VersionNode`] — the atomic-linked chain (newest
//!   first) the [`crate::store::MvStore`] read path traverses **without
//!   locks**.  Nodes are immutable after publication except for the commit
//!   stamp; writers mutate the links only under the owning stripe lock and
//!   hand unlinked nodes to [`crate::ebr::Ebr`] instead of freeing them.
//!
//! The visibility rules are intentionally the same functions read off two
//! different orderings: `Vec` methods scan `versions.iter().rev()` (newest
//! first), the node methods walk `head → next` (also newest first), so
//! every `find`/`any` below has a one-to-one twin.

use crate::ebr::{Ebr, Guard};
use crate::row::Row;
use crate::timestamp::{Timestamp, TxnToken};
use serde::{Deserialize, Serialize};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

/// One version of a row.
///
/// `row == None` is a tombstone (the row was deleted by the writer).
/// `commit_ts == None` means the writing transaction has not yet committed;
/// aborting removes the version entirely.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Version {
    /// The transaction that installed this version.
    pub writer: TxnToken,
    /// The row contents, or `None` for a delete.
    pub row: Option<Row>,
    /// The writer's commit timestamp, once it has committed.
    pub commit_ts: Option<Timestamp>,
}

impl Version {
    /// True once the writing transaction has committed.
    pub fn is_committed(&self) -> bool {
        self.commit_ts.is_some()
    }

    /// True if this version deletes the row.
    pub fn is_tombstone(&self) -> bool {
        self.row.is_none()
    }
}

/// The ordered list of versions of one row, oldest first.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct VersionChain {
    versions: Vec<Version>,
}

impl VersionChain {
    /// An empty chain (a row that has never existed).
    pub fn new() -> Self {
        Self::default()
    }

    /// All versions, oldest first.
    pub fn versions(&self) -> &[Version] {
        &self.versions
    }

    /// Install a new uncommitted version by `writer`.
    pub fn install(&mut self, writer: TxnToken, row: Option<Row>) {
        self.versions.push(Version {
            writer,
            row,
            commit_ts: None,
        });
    }

    /// Mark all of `writer`'s versions as committed at `ts`.
    pub fn commit(&mut self, writer: TxnToken, ts: Timestamp) {
        for v in &mut self.versions {
            if v.writer == writer && v.commit_ts.is_none() {
                v.commit_ts = Some(ts);
            }
        }
    }

    /// Remove all uncommitted versions installed by `writer` (rollback —
    /// the before image, i.e. the previous committed version, becomes
    /// current again).
    pub fn abort(&mut self, writer: TxnToken) {
        self.versions
            .retain(|v| !(v.writer == writer && v.commit_ts.is_none()));
    }

    /// The most recent version regardless of commit status — what a reader
    /// with no read locks at Degree 0/1 would observe (dirty reads).
    pub fn latest_any(&self) -> Option<&Version> {
        self.versions.last()
    }

    /// The most recent committed version.
    pub fn latest_committed(&self) -> Option<&Version> {
        self.versions.iter().rev().find(|v| v.is_committed())
    }

    /// The most recent version committed at or before `ts` — the Snapshot
    /// Isolation read rule for a transaction whose Start-Timestamp is `ts`.
    pub fn committed_as_of(&self, ts: Timestamp) -> Option<&Version> {
        self.versions
            .iter()
            .rev()
            .find(|v| matches!(v.commit_ts, Some(c) if c <= ts))
    }

    /// The version visible to `reader` under Snapshot Isolation: its own
    /// most recent uncommitted version if it has written the row, otherwise
    /// the version committed as of `start_ts` ("the transaction's writes
    /// will also be reflected in this snapshot", Section 4.2).
    pub fn visible_for(&self, reader: TxnToken, start_ts: Timestamp) -> Option<&Version> {
        self.versions
            .iter()
            .rev()
            .find(|v| v.writer == reader && !v.is_committed())
            .or_else(|| self.committed_as_of(start_ts))
    }

    /// The committed row contents immediately before `writer`'s first
    /// uncommitted version — the before image a recovery system would
    /// restore on rollback.
    pub fn before_image(&self, writer: TxnToken) -> Option<&Version> {
        let first_own = self
            .versions
            .iter()
            .position(|v| v.writer == writer && !v.is_committed())?;
        self.versions[..first_own]
            .iter()
            .rev()
            .find(|v| v.is_committed())
    }

    /// True if any *other* transaction committed a version of this row with
    /// a commit timestamp strictly greater than `start_ts` — the
    /// First-Committer-Wins test of Section 4.2.
    pub fn committed_after(&self, start_ts: Timestamp, excluding: TxnToken) -> bool {
        self.versions
            .iter()
            .any(|v| v.writer != excluding && matches!(v.commit_ts, Some(c) if c > start_ts))
    }

    /// True if some transaction other than `writer` currently holds an
    /// uncommitted version of this row.
    pub fn has_foreign_uncommitted(&self, writer: TxnToken) -> bool {
        self.versions
            .iter()
            .any(|v| v.writer != writer && !v.is_committed())
    }

    /// Number of versions in the chain.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// True if the chain holds no versions.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }
}

/// Commit-stamp sentinel meaning "the writer has not committed".
/// `Timestamp(0)` is a valid stamp ("the beginning of time"), so the
/// sentinel sits at the other end of the range; the oracle never allocates
/// `u64::MAX`.
pub const UNSTAMPED: u64 = u64::MAX;

/// One version of a row in the atomic-linked representation.
///
/// Immutable after publication except for `commit_ts` (stamped once, by
/// the committing writer, with a release store) — that immutability is
/// what lets readers traverse the chain without locks.
pub struct VersionNode {
    /// The transaction that installed this version.
    pub writer: TxnToken,
    row: Option<Row>,
    /// [`UNSTAMPED`] until the writer commits, then the commit timestamp.
    commit_ts: AtomicU64,
    /// The next-older version, or null at the chain's tail.  Written only
    /// before publication (install) or under the stripe lock (unlink);
    /// a retired node's `next` is deliberately left intact so an in-flight
    /// reader standing on it keeps a coherent view of the older suffix.
    next: AtomicPtr<VersionNode>,
}

impl VersionNode {
    /// The row contents, or `None` for a tombstone.
    pub fn row(&self) -> Option<&Row> {
        self.row.as_ref()
    }

    /// The writer's commit timestamp, once it has committed.
    pub fn commit_ts(&self) -> Option<Timestamp> {
        match self.commit_ts.load(Ordering::Acquire) {
            UNSTAMPED => None,
            ts => Some(Timestamp(ts)),
        }
    }

    /// True once the writing transaction has committed.
    pub fn is_committed(&self) -> bool {
        self.commit_ts.load(Ordering::Acquire) != UNSTAMPED
    }

    /// True if this version deletes the row.
    pub fn is_tombstone(&self) -> bool {
        self.row.is_none()
    }

    /// Committed at or before `ts`?
    fn committed_as_of(&self, ts: Timestamp) -> bool {
        matches!(self.commit_ts(), Some(c) if c <= ts)
    }
}

impl std::fmt::Debug for VersionNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionNode")
            .field("writer", &self.writer)
            .field("commit_ts", &self.commit_ts())
            .field("tombstone", &self.is_tombstone())
            .finish()
    }
}

/// Iterate a chain from a head snapshot, newest first.
///
/// The `'g` lifetime is the caller's proof that every node reached stays
/// allocated for the duration of the walk: either an epoch [`Guard`]
/// borrowed for `'g` (lock-free readers) or the owning stripe lock held
/// exclusively (writers).  Constructing the iterator is the single place
/// that turns raw chain pointers into references.
struct ChainIter<'g> {
    cur: *const VersionNode,
    _life: PhantomData<&'g VersionNode>,
}

impl<'g> Iterator for ChainIter<'g> {
    type Item = &'g VersionNode;

    fn next(&mut self) -> Option<&'g VersionNode> {
        if self.cur.is_null() {
            return None;
        }
        // SAFETY: non-null chain pointers reference nodes published with a
        // release store and freed only through epoch reclamation; the `'g`
        // proof (epoch pin or exclusive stripe lock, see the struct docs)
        // guarantees no reclamation of reachable nodes during the walk.
        #[allow(unsafe_code)]
        let node = unsafe { &*self.cur };
        self.cur = node.next.load(Ordering::Acquire);
        Some(node)
    }
}

/// An unlinked uncommitted version handed back by [`ChainHead::abort`]:
/// unreachable from the chain head but possibly still referenced by
/// in-flight readers, so it must be [`UnlinkedVersion::retire`]d, never
/// dropped in place.
#[must_use = "unlinked versions must be retired to the EBR domain"]
pub struct UnlinkedVersion {
    ptr: *mut VersionNode,
}

impl UnlinkedVersion {
    /// The unlinked version's row contents (used to roll its keys out of
    /// the ordered index before the memory is surrendered).
    pub fn row(&self) -> Option<&Row> {
        // SAFETY: the node was just unlinked by the caller's exclusive
        // stripe-locked `abort` and has not been retired yet, so the
        // allocation is still live.
        #[allow(unsafe_code)]
        unsafe {
            (*self.ptr).row()
        }
    }

    /// Surrender the node to the reclamation domain.
    pub fn retire(self, ebr: &Ebr) {
        ebr.retire(self.ptr);
    }
}

/// The atomic head of one row's version chain, newest version first.
///
/// Readers traverse it lock-free under an epoch [`Guard`]; every mutating
/// method documents its stripe-lock contract.  A null head is a row with
/// no versions (never written, or every write aborted).
pub struct ChainHead(AtomicPtr<VersionNode>);

impl Default for ChainHead {
    fn default() -> Self {
        Self::new()
    }
}

impl ChainHead {
    /// An empty chain.
    pub fn new() -> Self {
        ChainHead(AtomicPtr::new(std::ptr::null_mut()))
    }

    /// Snapshot the head pointer for one coherent traversal.
    fn snapshot<'g>(&self, _proof: &'g Guard<'_>) -> ChainIter<'g> {
        ChainIter {
            cur: self.0.load(Ordering::Acquire),
            _life: PhantomData,
        }
    }

    /// Writer-side traversal: requires the owning stripe lock held
    /// exclusively, which keeps every reachable node alive without a pin
    /// (unlinking requires the same lock).
    fn iter_exclusive(&self) -> ChainIter<'_> {
        ChainIter {
            cur: self.0.load(Ordering::Acquire),
            _life: PhantomData,
        }
    }

    /// Install a new uncommitted version at the head.
    ///
    /// Contract: the owning stripe lock is held exclusively.  The node is
    /// fully initialised (including its `next` link to the previous head)
    /// *before* the release store publishes it, so a reader sees either
    /// the old chain or the new node with a coherent tail — never a
    /// half-built node.
    pub fn install(&self, writer: TxnToken, row: Option<Row>) {
        let node = Box::into_raw(Box::new(VersionNode {
            writer,
            row,
            commit_ts: AtomicU64::new(UNSTAMPED),
            next: AtomicPtr::new(self.0.load(Ordering::Acquire)),
        }));
        self.0.store(node, Ordering::Release);
    }

    /// Stamp all of `writer`'s uncommitted versions with `ts`.
    ///
    /// Contract: the owning stripe lock is held exclusively.  The stamp is
    /// a release store; a concurrent lock-free reader observes each
    /// version flip from "uncommitted" to "committed at `ts`" atomically.
    pub fn commit(&self, writer: TxnToken, ts: Timestamp) {
        debug_assert_ne!(ts.0, UNSTAMPED, "u64::MAX is the unstamped sentinel");
        for node in self.iter_exclusive() {
            if node.writer == writer && !node.is_committed() {
                node.commit_ts.store(ts.0, Ordering::Release);
            }
        }
    }

    /// Unlink all of `writer`'s uncommitted versions (rollback: the before
    /// image becomes the head again) and return them for retirement.
    ///
    /// Contract: the owning stripe lock is held exclusively.  Each unlink
    /// is a release store that splices the node out; the node's own `next`
    /// is left untouched so readers already standing on it still see the
    /// correct older suffix.  The returned nodes are unreachable from the
    /// head but must be retired, not dropped.
    pub fn abort(&self, writer: TxnToken) -> Vec<UnlinkedVersion> {
        let mut removed = Vec::new();
        let mut link: &AtomicPtr<VersionNode> = &self.0;
        loop {
            let cur = link.load(Ordering::Acquire);
            if cur.is_null() {
                break;
            }
            // SAFETY: `cur` is reachable from the chain under the caller's
            // exclusive stripe lock; only this thread can unlink or retire
            // reachable nodes right now.
            #[allow(unsafe_code)]
            let node = unsafe { &*cur };
            if node.writer == writer && !node.is_committed() {
                link.store(node.next.load(Ordering::Acquire), Ordering::Release);
                removed.push(UnlinkedVersion { ptr: cur });
                // `link` now addresses the spliced-in successor; re-test it.
            } else {
                link = &node.next;
            }
        }
        removed
    }

    /// The most recent version regardless of commit status (dirty read).
    pub fn latest_any<'g>(&self, proof: &'g Guard<'_>) -> Option<&'g VersionNode> {
        self.snapshot(proof).next()
    }

    /// The most recent committed version.
    pub fn latest_committed<'g>(&self, proof: &'g Guard<'_>) -> Option<&'g VersionNode> {
        self.snapshot(proof).find(|v| v.is_committed())
    }

    /// The most recent version committed at or before `ts`.
    pub fn committed_as_of<'g>(
        &self,
        ts: Timestamp,
        proof: &'g Guard<'_>,
    ) -> Option<&'g VersionNode> {
        self.snapshot(proof).find(|v| v.committed_as_of(ts))
    }

    /// Snapshot Isolation visibility: `reader`'s own newest uncommitted
    /// version, else the version committed as of `start_ts` — both passes
    /// over the *same* head snapshot, so the answer is one coherent view
    /// even while writers publish concurrently.
    pub fn visible_for<'g>(
        &self,
        reader: TxnToken,
        start_ts: Timestamp,
        _proof: &'g Guard<'_>,
    ) -> Option<&'g VersionNode> {
        let head = self.0.load(Ordering::Acquire);
        let own = ChainIter::<'g> {
            cur: head,
            _life: PhantomData,
        }
        .find(|v| v.writer == reader && !v.is_committed());
        own.or_else(|| {
            ChainIter::<'g> {
                cur: head,
                _life: PhantomData,
            }
            .find(|v| v.committed_as_of(start_ts))
        })
    }

    /// First-Committer-Wins: did any *other* transaction commit a version
    /// of this row strictly after `start_ts`?
    pub fn committed_after(
        &self,
        start_ts: Timestamp,
        excluding: TxnToken,
        proof: &Guard<'_>,
    ) -> bool {
        self.snapshot(proof)
            .any(|v| v.writer != excluding && matches!(v.commit_ts(), Some(c) if c > start_ts))
    }

    /// True if some transaction other than `writer` holds an uncommitted
    /// version of this row.
    pub fn has_foreign_uncommitted(&self, writer: TxnToken, proof: &Guard<'_>) -> bool {
        self.snapshot(proof)
            .any(|v| v.writer != writer && !v.is_committed())
    }

    /// Number of (linked, live) versions in the chain.  Unlinked/retired
    /// nodes are excluded by construction — they are unreachable.
    pub fn len(&self, proof: &Guard<'_>) -> usize {
        self.snapshot(proof).count()
    }

    /// True if the chain holds no versions.
    pub fn is_empty(&self) -> bool {
        self.0.load(Ordering::Acquire).is_null()
    }

    /// The integer `column` values of every linked version (any commit
    /// state) — the index backfill's source of truth.
    pub fn collect_int_keys(&self, column: &str, proof: &Guard<'_>, out: &mut Vec<i64>) {
        for node in self.snapshot(proof) {
            if let Some(key) = node.row().and_then(|r| r.get_int(column)) {
                out.push(key);
            }
        }
    }
}

impl Drop for ChainHead {
    fn drop(&mut self) {
        // `&mut self` proves exclusive access (the store is being dropped):
        // walk and free directly.  Retired nodes were unlinked first, so
        // they are unreachable here and owned by the EBR domain instead.
        let mut cur = *self.0.get_mut();
        while !cur.is_null() {
            // SAFETY: exclusive access; each reachable node is owned by
            // the chain and freed exactly once.
            #[allow(unsafe_code)]
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next.load(Ordering::Acquire);
        }
    }
}

impl std::fmt::Debug for ChainHead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChainHead").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(balance: i64) -> Row {
        Row::new().with("balance", balance)
    }

    #[test]
    fn install_commit_and_visibility() {
        let mut chain = VersionChain::new();
        chain.install(TxnToken(1), Some(row(50)));
        assert!(chain.latest_committed().is_none());
        assert_eq!(chain.latest_any().unwrap().writer, TxnToken(1));

        chain.commit(TxnToken(1), Timestamp(5));
        assert!(chain.latest_committed().unwrap().is_committed());
        assert!(chain.committed_as_of(Timestamp(4)).is_none());
        assert_eq!(
            chain
                .committed_as_of(Timestamp(5))
                .and_then(|v| v.row.as_ref())
                .and_then(|r| r.get_int("balance")),
            Some(50)
        );
    }

    #[test]
    fn snapshot_visibility_prefers_own_uncommitted_writes() {
        let mut chain = VersionChain::new();
        chain.install(TxnToken(1), Some(row(50)));
        chain.commit(TxnToken(1), Timestamp(1));
        chain.install(TxnToken(2), Some(row(10)));

        // T2 sees its own write; T3 (start ts 1) sees the committed 50.
        let t2_view = chain.visible_for(TxnToken(2), Timestamp(1)).unwrap();
        assert_eq!(t2_view.row.as_ref().unwrap().get_int("balance"), Some(10));
        let t3_view = chain.visible_for(TxnToken(3), Timestamp(1)).unwrap();
        assert_eq!(t3_view.row.as_ref().unwrap().get_int("balance"), Some(50));
    }

    #[test]
    fn snapshot_visibility_ignores_versions_committed_after_start() {
        let mut chain = VersionChain::new();
        chain.install(TxnToken(1), Some(row(50)));
        chain.commit(TxnToken(1), Timestamp(1));
        chain.install(TxnToken(2), Some(row(90)));
        chain.commit(TxnToken(2), Timestamp(5));

        // A reader that started at ts 2 still sees 50 (updates by
        // transactions committing after its start are invisible).
        let view = chain.visible_for(TxnToken(9), Timestamp(2)).unwrap();
        assert_eq!(view.row.as_ref().unwrap().get_int("balance"), Some(50));
        // A reader starting at ts 5 sees 90.
        let view = chain.visible_for(TxnToken(9), Timestamp(5)).unwrap();
        assert_eq!(view.row.as_ref().unwrap().get_int("balance"), Some(90));
    }

    #[test]
    fn abort_restores_the_before_image() {
        let mut chain = VersionChain::new();
        chain.install(TxnToken(1), Some(row(100)));
        chain.commit(TxnToken(1), Timestamp(1));
        chain.install(TxnToken(2), Some(row(200)));

        let before = chain.before_image(TxnToken(2)).unwrap();
        assert_eq!(before.row.as_ref().unwrap().get_int("balance"), Some(100));

        chain.abort(TxnToken(2));
        assert_eq!(chain.len(), 1);
        assert_eq!(
            chain
                .latest_any()
                .and_then(|v| v.row.as_ref())
                .and_then(|r| r.get_int("balance")),
            Some(100)
        );
    }

    #[test]
    fn tombstones_mark_deletes() {
        let mut chain = VersionChain::new();
        chain.install(TxnToken(1), Some(row(1)));
        chain.commit(TxnToken(1), Timestamp(1));
        chain.install(TxnToken(2), None);
        chain.commit(TxnToken(2), Timestamp(2));
        assert!(chain.latest_committed().unwrap().is_tombstone());
        // As of ts 1 the row still exists.
        assert!(!chain.committed_as_of(Timestamp(1)).unwrap().is_tombstone());
    }

    #[test]
    fn first_committer_wins_check() {
        let mut chain = VersionChain::new();
        chain.install(TxnToken(1), Some(row(100)));
        chain.commit(TxnToken(1), Timestamp(1));
        chain.install(TxnToken(2), Some(row(120)));
        chain.commit(TxnToken(2), Timestamp(5));

        // T3 started at ts 2; T2 committed at ts 5 > 2 — conflict.
        assert!(chain.committed_after(Timestamp(2), TxnToken(3)));
        // A transaction that started at ts 5 or later sees no conflict.
        assert!(!chain.committed_after(Timestamp(5), TxnToken(3)));
        // A transaction's own commit does not conflict with itself.
        assert!(!chain.committed_after(Timestamp(2), TxnToken(2)));
    }

    #[test]
    fn foreign_uncommitted_detection() {
        let mut chain = VersionChain::new();
        chain.install(TxnToken(1), Some(row(1)));
        assert!(chain.has_foreign_uncommitted(TxnToken(2)));
        assert!(!chain.has_foreign_uncommitted(TxnToken(1)));
        chain.commit(TxnToken(1), Timestamp(1));
        assert!(!chain.has_foreign_uncommitted(TxnToken(2)));
    }

    #[test]
    fn empty_chain_reports_nothing() {
        let chain = VersionChain::new();
        assert!(chain.is_empty());
        assert!(chain.latest_any().is_none());
        assert!(chain.latest_committed().is_none());
        assert!(chain.committed_as_of(Timestamp(10)).is_none());
        assert!(chain.before_image(TxnToken(1)).is_none());
    }

    // ------------------------------------------------------------------
    // The atomic-linked chain must answer every visibility question
    // exactly like the Vec reference above.
    // ------------------------------------------------------------------

    fn balance_of(node: Option<&VersionNode>) -> Option<i64> {
        node.and_then(|v| v.row())
            .and_then(|r| r.get_int("balance"))
    }

    #[test]
    fn atomic_chain_matches_vec_visibility() {
        let ebr = Ebr::new();
        let guard = ebr.pin();
        let head = ChainHead::new();
        assert!(head.is_empty());
        assert!(head.latest_any(&guard).is_none());

        head.install(TxnToken(1), Some(row(50)));
        assert!(head.latest_committed(&guard).is_none());
        assert_eq!(balance_of(head.latest_any(&guard)), Some(50));

        head.commit(TxnToken(1), Timestamp(1));
        assert_eq!(balance_of(head.latest_committed(&guard)), Some(50));
        assert!(head.committed_as_of(Timestamp(0), &guard).is_none());

        head.install(TxnToken(2), Some(row(10)));
        // Own uncommitted write first; strangers see the snapshot.
        assert_eq!(
            balance_of(head.visible_for(TxnToken(2), Timestamp(1), &guard)),
            Some(10)
        );
        assert_eq!(
            balance_of(head.visible_for(TxnToken(3), Timestamp(1), &guard)),
            Some(50)
        );
        assert!(head.has_foreign_uncommitted(TxnToken(3), &guard));
        assert!(!head.has_foreign_uncommitted(TxnToken(2), &guard));

        head.commit(TxnToken(2), Timestamp(5));
        assert_eq!(
            balance_of(head.committed_as_of(Timestamp(1), &guard)),
            Some(50)
        );
        assert_eq!(
            balance_of(head.committed_as_of(Timestamp(5), &guard)),
            Some(10)
        );
        assert!(head.committed_after(Timestamp(2), TxnToken(3), &guard));
        assert!(!head.committed_after(Timestamp(5), TxnToken(3), &guard));
        assert!(!head.committed_after(Timestamp(2), TxnToken(2), &guard));
        assert_eq!(head.len(&guard), 2);
    }

    #[test]
    fn atomic_chain_abort_unlinks_and_retires() {
        let ebr = Ebr::new();
        let head = ChainHead::new();
        head.install(TxnToken(1), Some(row(100)));
        head.commit(TxnToken(1), Timestamp(1));
        head.install(TxnToken(2), Some(row(999)));
        head.install(TxnToken(2), None);

        let removed = head.abort(TxnToken(2));
        assert_eq!(removed.len(), 2);
        // The unlinked rows are still readable until retired (the index
        // maintenance path depends on this).
        assert!(removed.iter().any(|v| v.row().is_none()));
        for v in removed {
            v.retire(&ebr);
        }

        let guard = ebr.pin();
        assert_eq!(head.len(&guard), 1);
        assert_eq!(balance_of(head.latest_any(&guard)), Some(100));
        drop(guard);
        for _ in 0..4 {
            ebr.flush();
        }
        let stats = ebr.stats();
        assert_eq!(stats.retired, 2);
        assert_eq!(stats.reclaimed, 2);
        assert_eq!(stats.reclaimed_while_pinned, 0);
    }

    #[test]
    fn atomic_chain_tombstones_and_drop() {
        let ebr = Ebr::new();
        let head = ChainHead::new();
        head.install(TxnToken(1), Some(row(1)));
        head.commit(TxnToken(1), Timestamp(1));
        head.install(TxnToken(2), None);
        head.commit(TxnToken(2), Timestamp(2));
        let guard = ebr.pin();
        assert!(head.latest_committed(&guard).unwrap().is_tombstone());
        assert!(!head
            .committed_as_of(Timestamp(1), &guard)
            .unwrap()
            .is_tombstone());
        let mut keys = Vec::new();
        head.collect_int_keys("balance", &guard, &mut keys);
        assert_eq!(keys, vec![1]);
        // Dropping the head frees both nodes (no leak under e.g. miri-less
        // sanity: simply must not crash or double-free).
        drop(guard);
        drop(head);
    }
}
