//! Version chains: the multi-version representation of a single row.

use crate::row::Row;
use crate::timestamp::{Timestamp, TxnToken};
use serde::{Deserialize, Serialize};

/// One version of a row.
///
/// `row == None` is a tombstone (the row was deleted by the writer).
/// `commit_ts == None` means the writing transaction has not yet committed;
/// aborting removes the version entirely.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Version {
    /// The transaction that installed this version.
    pub writer: TxnToken,
    /// The row contents, or `None` for a delete.
    pub row: Option<Row>,
    /// The writer's commit timestamp, once it has committed.
    pub commit_ts: Option<Timestamp>,
}

impl Version {
    /// True once the writing transaction has committed.
    pub fn is_committed(&self) -> bool {
        self.commit_ts.is_some()
    }

    /// True if this version deletes the row.
    pub fn is_tombstone(&self) -> bool {
        self.row.is_none()
    }
}

/// The ordered list of versions of one row, oldest first.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct VersionChain {
    versions: Vec<Version>,
}

impl VersionChain {
    /// An empty chain (a row that has never existed).
    pub fn new() -> Self {
        Self::default()
    }

    /// All versions, oldest first.
    pub fn versions(&self) -> &[Version] {
        &self.versions
    }

    /// Install a new uncommitted version by `writer`.
    pub fn install(&mut self, writer: TxnToken, row: Option<Row>) {
        self.versions.push(Version {
            writer,
            row,
            commit_ts: None,
        });
    }

    /// Mark all of `writer`'s versions as committed at `ts`.
    pub fn commit(&mut self, writer: TxnToken, ts: Timestamp) {
        for v in &mut self.versions {
            if v.writer == writer && v.commit_ts.is_none() {
                v.commit_ts = Some(ts);
            }
        }
    }

    /// Remove all uncommitted versions installed by `writer` (rollback —
    /// the before image, i.e. the previous committed version, becomes
    /// current again).
    pub fn abort(&mut self, writer: TxnToken) {
        self.versions
            .retain(|v| !(v.writer == writer && v.commit_ts.is_none()));
    }

    /// The most recent version regardless of commit status — what a reader
    /// with no read locks at Degree 0/1 would observe (dirty reads).
    pub fn latest_any(&self) -> Option<&Version> {
        self.versions.last()
    }

    /// The most recent committed version.
    pub fn latest_committed(&self) -> Option<&Version> {
        self.versions.iter().rev().find(|v| v.is_committed())
    }

    /// The most recent version committed at or before `ts` — the Snapshot
    /// Isolation read rule for a transaction whose Start-Timestamp is `ts`.
    pub fn committed_as_of(&self, ts: Timestamp) -> Option<&Version> {
        self.versions
            .iter()
            .rev()
            .find(|v| matches!(v.commit_ts, Some(c) if c <= ts))
    }

    /// The version visible to `reader` under Snapshot Isolation: its own
    /// most recent uncommitted version if it has written the row, otherwise
    /// the version committed as of `start_ts` ("the transaction's writes
    /// will also be reflected in this snapshot", Section 4.2).
    pub fn visible_for(&self, reader: TxnToken, start_ts: Timestamp) -> Option<&Version> {
        self.versions
            .iter()
            .rev()
            .find(|v| v.writer == reader && !v.is_committed())
            .or_else(|| self.committed_as_of(start_ts))
    }

    /// The committed row contents immediately before `writer`'s first
    /// uncommitted version — the before image a recovery system would
    /// restore on rollback.
    pub fn before_image(&self, writer: TxnToken) -> Option<&Version> {
        let first_own = self
            .versions
            .iter()
            .position(|v| v.writer == writer && !v.is_committed())?;
        self.versions[..first_own]
            .iter()
            .rev()
            .find(|v| v.is_committed())
    }

    /// True if any *other* transaction committed a version of this row with
    /// a commit timestamp strictly greater than `start_ts` — the
    /// First-Committer-Wins test of Section 4.2.
    pub fn committed_after(&self, start_ts: Timestamp, excluding: TxnToken) -> bool {
        self.versions
            .iter()
            .any(|v| v.writer != excluding && matches!(v.commit_ts, Some(c) if c > start_ts))
    }

    /// True if some transaction other than `writer` currently holds an
    /// uncommitted version of this row.
    pub fn has_foreign_uncommitted(&self, writer: TxnToken) -> bool {
        self.versions
            .iter()
            .any(|v| v.writer != writer && !v.is_committed())
    }

    /// Number of versions in the chain.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// True if the chain holds no versions.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(balance: i64) -> Row {
        Row::new().with("balance", balance)
    }

    #[test]
    fn install_commit_and_visibility() {
        let mut chain = VersionChain::new();
        chain.install(TxnToken(1), Some(row(50)));
        assert!(chain.latest_committed().is_none());
        assert_eq!(chain.latest_any().unwrap().writer, TxnToken(1));

        chain.commit(TxnToken(1), Timestamp(5));
        assert!(chain.latest_committed().unwrap().is_committed());
        assert!(chain.committed_as_of(Timestamp(4)).is_none());
        assert_eq!(
            chain
                .committed_as_of(Timestamp(5))
                .and_then(|v| v.row.as_ref())
                .and_then(|r| r.get_int("balance")),
            Some(50)
        );
    }

    #[test]
    fn snapshot_visibility_prefers_own_uncommitted_writes() {
        let mut chain = VersionChain::new();
        chain.install(TxnToken(1), Some(row(50)));
        chain.commit(TxnToken(1), Timestamp(1));
        chain.install(TxnToken(2), Some(row(10)));

        // T2 sees its own write; T3 (start ts 1) sees the committed 50.
        let t2_view = chain.visible_for(TxnToken(2), Timestamp(1)).unwrap();
        assert_eq!(t2_view.row.as_ref().unwrap().get_int("balance"), Some(10));
        let t3_view = chain.visible_for(TxnToken(3), Timestamp(1)).unwrap();
        assert_eq!(t3_view.row.as_ref().unwrap().get_int("balance"), Some(50));
    }

    #[test]
    fn snapshot_visibility_ignores_versions_committed_after_start() {
        let mut chain = VersionChain::new();
        chain.install(TxnToken(1), Some(row(50)));
        chain.commit(TxnToken(1), Timestamp(1));
        chain.install(TxnToken(2), Some(row(90)));
        chain.commit(TxnToken(2), Timestamp(5));

        // A reader that started at ts 2 still sees 50 (updates by
        // transactions committing after its start are invisible).
        let view = chain.visible_for(TxnToken(9), Timestamp(2)).unwrap();
        assert_eq!(view.row.as_ref().unwrap().get_int("balance"), Some(50));
        // A reader starting at ts 5 sees 90.
        let view = chain.visible_for(TxnToken(9), Timestamp(5)).unwrap();
        assert_eq!(view.row.as_ref().unwrap().get_int("balance"), Some(90));
    }

    #[test]
    fn abort_restores_the_before_image() {
        let mut chain = VersionChain::new();
        chain.install(TxnToken(1), Some(row(100)));
        chain.commit(TxnToken(1), Timestamp(1));
        chain.install(TxnToken(2), Some(row(200)));

        let before = chain.before_image(TxnToken(2)).unwrap();
        assert_eq!(before.row.as_ref().unwrap().get_int("balance"), Some(100));

        chain.abort(TxnToken(2));
        assert_eq!(chain.len(), 1);
        assert_eq!(
            chain
                .latest_any()
                .and_then(|v| v.row.as_ref())
                .and_then(|r| r.get_int("balance")),
            Some(100)
        );
    }

    #[test]
    fn tombstones_mark_deletes() {
        let mut chain = VersionChain::new();
        chain.install(TxnToken(1), Some(row(1)));
        chain.commit(TxnToken(1), Timestamp(1));
        chain.install(TxnToken(2), None);
        chain.commit(TxnToken(2), Timestamp(2));
        assert!(chain.latest_committed().unwrap().is_tombstone());
        // As of ts 1 the row still exists.
        assert!(!chain.committed_as_of(Timestamp(1)).unwrap().is_tombstone());
    }

    #[test]
    fn first_committer_wins_check() {
        let mut chain = VersionChain::new();
        chain.install(TxnToken(1), Some(row(100)));
        chain.commit(TxnToken(1), Timestamp(1));
        chain.install(TxnToken(2), Some(row(120)));
        chain.commit(TxnToken(2), Timestamp(5));

        // T3 started at ts 2; T2 committed at ts 5 > 2 — conflict.
        assert!(chain.committed_after(Timestamp(2), TxnToken(3)));
        // A transaction that started at ts 5 or later sees no conflict.
        assert!(!chain.committed_after(Timestamp(5), TxnToken(3)));
        // A transaction's own commit does not conflict with itself.
        assert!(!chain.committed_after(Timestamp(2), TxnToken(2)));
    }

    #[test]
    fn foreign_uncommitted_detection() {
        let mut chain = VersionChain::new();
        chain.install(TxnToken(1), Some(row(1)));
        assert!(chain.has_foreign_uncommitted(TxnToken(2)));
        assert!(!chain.has_foreign_uncommitted(TxnToken(1)));
        chain.commit(TxnToken(1), Timestamp(1));
        assert!(!chain.has_foreign_uncommitted(TxnToken(2)));
    }

    #[test]
    fn empty_chain_reports_nothing() {
        let chain = VersionChain::new();
        assert!(chain.is_empty());
        assert!(chain.latest_any().is_none());
        assert!(chain.latest_committed().is_none());
        assert!(chain.committed_as_of(Timestamp(10)).is_none());
        assert!(chain.before_image(TxnToken(1)).is_none());
    }
}
