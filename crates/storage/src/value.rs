//! Column values.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A value stored in one column of a row.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ColumnValue {
    /// 64-bit signed integer (account balances, counters, hours…).
    Int(i64),
    /// UTF-8 text.
    Text(String),
    /// Boolean flag (e.g. `active` in the employee phantom example).
    Bool(bool),
    /// SQL NULL.
    Null,
}

impl ColumnValue {
    /// The integer content, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ColumnValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The text content, if this is a `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            ColumnValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean content, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ColumnValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, ColumnValue::Null)
    }

    /// SQL-style comparison: values of different types (or NULLs) are
    /// incomparable and return `None`.
    pub fn compare(&self, other: &ColumnValue) -> Option<Ordering> {
        match (self, other) {
            (ColumnValue::Int(a), ColumnValue::Int(b)) => Some(a.cmp(b)),
            (ColumnValue::Text(a), ColumnValue::Text(b)) => Some(a.cmp(b)),
            (ColumnValue::Bool(a), ColumnValue::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl fmt::Display for ColumnValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnValue::Int(v) => write!(f, "{v}"),
            ColumnValue::Text(s) => write!(f, "'{s}'"),
            ColumnValue::Bool(b) => write!(f, "{b}"),
            ColumnValue::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for ColumnValue {
    fn from(v: i64) -> Self {
        ColumnValue::Int(v)
    }
}

impl From<i32> for ColumnValue {
    fn from(v: i32) -> Self {
        ColumnValue::Int(v as i64)
    }
}

impl From<&str> for ColumnValue {
    fn from(v: &str) -> Self {
        ColumnValue::Text(v.to_string())
    }
}

impl From<String> for ColumnValue {
    fn from(v: String) -> Self {
        ColumnValue::Text(v)
    }
}

impl From<bool> for ColumnValue {
    fn from(v: bool) -> Self {
        ColumnValue::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(ColumnValue::from(5i64), ColumnValue::Int(5));
        assert_eq!(ColumnValue::from(5i32), ColumnValue::Int(5));
        assert_eq!(ColumnValue::from("hi"), ColumnValue::Text("hi".into()));
        assert_eq!(ColumnValue::from(true), ColumnValue::Bool(true));
    }

    #[test]
    fn accessors() {
        assert_eq!(ColumnValue::Int(7).as_int(), Some(7));
        assert_eq!(ColumnValue::Int(7).as_text(), None);
        assert_eq!(ColumnValue::Text("a".into()).as_text(), Some("a"));
        assert_eq!(ColumnValue::Bool(true).as_bool(), Some(true));
        assert!(ColumnValue::Null.is_null());
        assert!(!ColumnValue::Int(0).is_null());
    }

    #[test]
    fn comparisons_are_typed() {
        assert_eq!(
            ColumnValue::Int(1).compare(&ColumnValue::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            ColumnValue::Text("b".into()).compare(&ColumnValue::Text("a".into())),
            Some(Ordering::Greater)
        );
        assert_eq!(
            ColumnValue::Int(1).compare(&ColumnValue::Text("1".into())),
            None
        );
        assert_eq!(ColumnValue::Null.compare(&ColumnValue::Null), None);
    }

    #[test]
    fn display() {
        assert_eq!(ColumnValue::Int(-3).to_string(), "-3");
        assert_eq!(ColumnValue::Text("x".into()).to_string(), "'x'");
        assert_eq!(ColumnValue::Null.to_string(), "NULL");
        assert_eq!(ColumnValue::Bool(false).to_string(), "false");
    }
}
