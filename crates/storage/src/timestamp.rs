//! Timestamps, the timestamp oracle, and transaction tokens.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A logical timestamp.  Start- and Commit-Timestamps (Section 4.2) are
/// drawn from a single monotonically increasing sequence, so a
/// Commit-Timestamp is "larger than any existing Start-Timestamp or
/// Commit-Timestamp" by construction.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts{}", self.0)
    }
}

/// A token identifying the transaction that installed a version.  Engine
/// transaction ids map 1:1 onto tokens.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct TxnToken(pub u64);

impl fmt::Display for TxnToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// Monotonic source of timestamps, shared by all transactions of a
/// database instance.
///
/// Allocation and *publication* are separate so a sharded store can make
/// commits atomically visible: a committer reserves a timestamp, stamps
/// its version chains shard by shard, and only then publishes — snapshots
/// taken "now" ([`TimestampOracle::current`]) never include a timestamp
/// whose chains are still being stamped.  [`TimestampOracle::next`]
/// reserves and publishes in one step for callers (tests, benches, direct
/// store users) that stamp under their own discipline.
#[derive(Debug, Default)]
pub struct TimestampOracle {
    /// The next timestamp to hand out.
    allocated: AtomicU64,
    /// The largest timestamp whose commit is fully visible.
    published: AtomicU64,
}

impl TimestampOracle {
    /// A fresh oracle starting at timestamp 1 (`Timestamp(0)` is reserved
    /// for "the beginning of time" — the initial database state).
    pub fn new() -> Self {
        TimestampOracle {
            allocated: AtomicU64::new(1),
            published: AtomicU64::new(0),
        }
    }

    /// Allocate and immediately publish the next timestamp.
    pub fn next(&self) -> Timestamp {
        let ts = self.reserve();
        self.publish(ts);
        ts
    }

    /// Allocate the next timestamp without publishing it: `current()`
    /// stays behind until [`TimestampOracle::publish`] is called, so
    /// readers starting in between cannot observe a half-stamped commit.
    pub fn reserve(&self) -> Timestamp {
        Timestamp(self.allocated.fetch_add(1, Ordering::SeqCst))
    }

    /// Publish a reserved timestamp: snapshots taken from now on may
    /// include it.  Callers must have finished installing everything the
    /// timestamp stamps.
    pub fn publish(&self, ts: Timestamp) {
        self.published.fetch_max(ts.0, Ordering::SeqCst);
    }

    /// The most recent *published* timestamp (0 if none).  A snapshot
    /// taken "now" uses this value.
    pub fn current(&self) -> Timestamp {
        Timestamp(self.published.load(Ordering::SeqCst))
    }

    /// Advance the oracle past `ts`: future allocations are strictly
    /// larger, and `current()` is at least `ts`.  Recovery harnesses call
    /// this with a recovered store's largest commit timestamp so a fresh
    /// database resumes the clock where the crashed one stopped (never
    /// moves the oracle backwards).
    pub fn advance_past(&self, ts: Timestamp) {
        self.allocated.fetch_max(ts.0 + 1, Ordering::SeqCst);
        self.published.fetch_max(ts.0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn timestamps_are_monotonic() {
        let oracle = TimestampOracle::new();
        let a = oracle.next();
        let b = oracle.next();
        let c = oracle.next();
        assert!(a < b && b < c);
        assert_eq!(oracle.current(), c);
    }

    #[test]
    fn current_before_any_allocation_is_zero() {
        let oracle = TimestampOracle::new();
        assert_eq!(oracle.current(), Timestamp(0));
    }

    #[test]
    fn concurrent_allocation_yields_distinct_timestamps() {
        let oracle = Arc::new(TimestampOracle::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let oracle = Arc::clone(&oracle);
            handles.push(std::thread::spawn(move || {
                (0..100).map(|_| oracle.next()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<Timestamp> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let len = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), len, "timestamps must be unique");
    }

    #[test]
    fn advance_past_resumes_a_recovered_clock() {
        let oracle = TimestampOracle::new();
        oracle.advance_past(Timestamp(10));
        assert_eq!(oracle.current(), Timestamp(10));
        assert!(oracle.next() > Timestamp(10));
        // Never backwards.
        let at = oracle.current();
        oracle.advance_past(Timestamp(3));
        assert_eq!(oracle.current(), at);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Timestamp(4).to_string(), "ts4");
        assert_eq!(TxnToken(2).to_string(), "txn2");
    }

    #[test]
    fn reserved_timestamps_stay_invisible_until_published() {
        let oracle = TimestampOracle::new();
        let a = oracle.next();
        let b = oracle.reserve();
        // A snapshot taken while `b`'s commit is being stamped must not
        // include it yet.
        assert_eq!(oracle.current(), a);
        oracle.publish(b);
        assert_eq!(oracle.current(), b);
        // Publication is monotonic: re-publishing an older timestamp never
        // moves `current` backwards.
        oracle.publish(a);
        assert_eq!(oracle.current(), b);
    }
}
