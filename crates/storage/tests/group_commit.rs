//! Group commit: batched fsync scheduling on the durable log store.
//!
//! The group-commit proof from the issue, at the storage level:
//!
//! * single-threaded, per-commit fsync (`GroupCommit::Off`): the fsync
//!   counter advances by exactly one per writing commit — the baseline
//!   tax the batcher exists to amortise;
//! * a concurrent commit storm under `GroupCommit::On`: the counter
//!   advances **strictly less** than the number of committed
//!   transactions, because a batch leader's single fsync covers every
//!   committer that enqueued behind it;
//! * the batching is an fsync-scheduling optimisation only — every
//!   acknowledged commit is durable, and a crash-recovery replays all of
//!   them.

use critique_storage::{
    GroupCommit, LogStore, LogStoreConfig, Row, StorageBackend, Timestamp, TxnToken,
};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "critique-group-commit-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn balance_row(v: i64) -> Row {
    Row::new().with("balance", v)
}

#[test]
fn single_threaded_commits_fsync_exactly_once_each_without_batching() {
    let store = LogStore::open_durable_temp(LogStoreConfig::default()).unwrap();
    store.create_table("t");
    let base = store.fsync_count();
    const COMMITS: u64 = 20;
    for k in 0..COMMITS {
        let txn = TxnToken(1 + k);
        store.insert("t", txn, balance_row(k as i64));
        store.commit(txn, Timestamp(1 + k));
        store.flush_commit(txn); // no-op under GroupCommit::Off
        assert_eq!(
            store.fsync_count(),
            base + k + 1,
            "commit {k}: exactly one fsync per writing commit"
        );
    }
    // Read-only commits touch nothing durable and pay no fsync.
    store.commit(TxnToken(900), Timestamp(900));
    assert_eq!(store.fsync_count(), base + COMMITS);
}

#[test]
fn concurrent_commit_storm_issues_fewer_fsyncs_than_commits() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 25;
    const COMMITS: u64 = THREADS * PER_THREAD;
    let dir = scratch_dir("storm");
    let store = Arc::new(
        LogStore::open_durable(
            &dir,
            LogStoreConfig {
                group_commit: GroupCommit::On { window_micros: 300 },
                ..LogStoreConfig::default()
            },
        )
        .unwrap(),
    );
    store.create_table("t");
    let base = store.fsync_count();
    let clock = Arc::new(AtomicU64::new(1));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let store = Arc::clone(&store);
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let txn = TxnToken(1 + t * PER_THREAD + i);
                    store.insert("t", txn, balance_row((t * PER_THREAD + i) as i64));
                    let ts = Timestamp(clock.fetch_add(1, Ordering::Relaxed));
                    store.commit(txn, ts);
                    // The acknowledgement point: parks behind the batch
                    // leader until one fsync covers this commit record.
                    store.flush_commit(txn);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let delta = store.fsync_count() - base;
    assert!(
        delta < COMMITS,
        "group commit must batch: {delta} fsyncs for {COMMITS} commits"
    );
    assert_eq!(store.committed_row_count("t"), COMMITS as usize);
    // Batched acknowledgement is still durable acknowledgement: a crash
    // after the storm loses nothing.
    drop(store);
    let recovered = LogStore::recover(&dir).unwrap();
    assert_eq!(
        recovered.committed_row_count("t"),
        COMMITS as usize,
        "every batched commit survives recovery"
    );
    assert_eq!(recovered.last_commit_ts(), Some(Timestamp(COMMITS)));
    drop(recovered);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn sharded_storm_batches_below_the_per_commit_floor_and_recovers() {
    // The composed layout from the issue: sharded log + group commit.
    // Per-commit fsync on a sharded store costs at least two fsyncs per
    // writing commit (the row's data shard, then the control shard); the
    // batcher must beat that floor, and recovery must merge every shard's
    // records with the batched commit stream.
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 25;
    const COMMITS: u64 = THREADS * PER_THREAD;
    let dir = scratch_dir("sharded-storm");
    let store = Arc::new(
        LogStore::open_durable(
            &dir,
            LogStoreConfig {
                shards: 4,
                group_commit: GroupCommit::On { window_micros: 300 },
                ..LogStoreConfig::default()
            },
        )
        .unwrap(),
    );
    store.create_table("t");
    let base = store.fsync_count();
    let clock = Arc::new(AtomicU64::new(1));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let store = Arc::clone(&store);
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let txn = TxnToken(1 + t * PER_THREAD + i);
                    store.insert("t", txn, balance_row((t * PER_THREAD + i) as i64));
                    let ts = Timestamp(clock.fetch_add(1, Ordering::Relaxed));
                    store.commit(txn, ts);
                    store.flush_commit(txn);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let delta = store.fsync_count() - base;
    assert!(
        delta < 2 * COMMITS,
        "sharded group commit must beat the 2-fsync-per-commit floor: \
         {delta} fsyncs for {COMMITS} commits"
    );
    drop(store);
    let recovered = LogStore::recover(&dir).unwrap();
    assert_eq!(recovered.committed_row_count("t"), COMMITS as usize);
    assert_eq!(recovered.last_commit_ts(), Some(Timestamp(COMMITS)));
    drop(recovered);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn held_batches_are_not_durable_until_released() {
    // The crash-simulation hooks the differential harness drives: while
    // flushes are suspended, acknowledged commits cost no fsync (their
    // records sit in the queue); releasing the hold flushes them all
    // behind one fsync.
    let store = LogStore::open_durable_temp(LogStoreConfig {
        group_commit: GroupCommit::On { window_micros: 0 },
        ..LogStoreConfig::default()
    })
    .unwrap();
    store.create_table("t");
    store.suspend_commit_flushes();
    let base = store.fsync_count();
    for k in 0..3u64 {
        let txn = TxnToken(1 + k);
        store.insert("t", txn, balance_row(k as i64));
        store.commit(txn, Timestamp(1 + k));
        store.flush_commit(txn); // returns immediately under the hold
    }
    assert_eq!(
        store.fsync_count(),
        base,
        "held commits must not have fsynced"
    );
    store.flush_held_commits();
    assert_eq!(
        store.fsync_count(),
        base + 1,
        "releasing the hold flushes the whole batch behind one fsync"
    );
    assert_eq!(store.committed_row_count("t"), 3);
}

#[test]
fn compaction_rewrite_never_persists_a_held_batch_commit() {
    // The torn-commit hazard: a commit caught in a held batch is stamped
    // in memory but covered by no fsync.  A compaction rewrite racing
    // the batch durably re-emits shard state — it must write that
    // writer's records as *pending* (no inline commit timestamp, no
    // re-emitted Commit frame), otherwise a crash before the batch fsync
    // recovers the commit on the rewritten shards only: a partially
    // stamped transaction.
    use critique_storage::RowId;
    let dir = scratch_dir("rewrite-held");
    let store = LogStore::open_durable(
        &dir,
        LogStoreConfig {
            shards: 2,
            compact_watermark: 1,
            group_commit: GroupCommit::On { window_micros: 0 },
            ..LogStoreConfig::default()
        },
    )
    .unwrap();
    store.create_table("t");
    let seeder = TxnToken(1);
    let ids: Vec<RowId> = (0..8)
        .map(|_| store.insert("t", seeder, balance_row(100)))
        .collect();
    store.commit(seeder, Timestamp(1));
    store.flush_commit(seeder); // durably acknowledged
    store.suspend_commit_flushes();
    let held = TxnToken(2);
    for &id in &ids {
        store.update("t", held, id, balance_row(999)).unwrap();
    }
    store.commit(held, Timestamp(2));
    store.flush_commit(held); // acknowledged in process, never fsynced

    // An unrelated writer dirties every row and aborts: with a watermark
    // of 1, every shard holding a row compacts and rewrites its chain
    // (and the control shard re-derives its Commit frames) on disk while
    // the batch is still held.
    let aborter = TxnToken(3);
    for &id in &ids {
        store.update("t", aborter, id, balance_row(0)).unwrap();
    }
    store.abort(aborter);
    // Power cut before the held batch ever flushed: truncate every open
    // write-ahead file to its durable prefix, like the crash harness.
    let tails = store.durable_file_tails();
    std::mem::forget(store);
    for (path, synced) in tails {
        let file = fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(synced).unwrap();
        file.sync_all().unwrap();
    }
    let recovered = LogStore::recover(&dir).unwrap();
    // The held commit vanishes wholesale — no row may carry its value.
    for &id in &ids {
        assert_eq!(
            recovered
                .get_latest_committed("t", id)
                .unwrap()
                .get_int("balance"),
            Some(100),
            "row {id:?}: a never-fsynced commit leaked through the rewrite"
        );
    }
    assert_eq!(recovered.last_commit_ts(), Some(Timestamp(1)));
    drop(recovered);
    let _ = fs::remove_dir_all(&dir);
}
