//! Differential conformance: every storage backend is semantically
//! interchangeable behind [`StorageBackend`].
//!
//! A property test replays identical random operation sequences against
//! the sharded chain store ([`MvStore`]) and the append-only log store
//! ([`LogStore`]) — the latter squeezed into tiny segments with an
//! aggressive compaction watermark (and, in half the cases, payload spill
//! to a temp file) so segment rollover, pointer remapping, and the spill
//! codec are all on the hot path — and then requires bit-identical answers
//! from every read surface: visible state at every timestamp and for every
//! reader, predicate scans, write sets, First-Committer-Wins verdicts,
//! foreign-uncommitted checks, and the bookkeeping counters.
//!
//! This is the contract that lets the isolation schedulers not care which
//! backend they run on: if these properties hold, the engine-level
//! conformance matrix *must* produce identical histories on both.

use critique_storage::prelude::*;
use proptest::prelude::*;

/// One step of a random schedule.  Decoded from the integer tuples the
/// proptest strategy generates.
#[derive(Clone, Copy, Debug)]
enum Step {
    Insert { table: usize, txn: u64, value: i64 },
    Update { table: usize, txn: u64, row: u64 },
    Delete { table: usize, txn: u64, row: u64 },
    Commit { txn: u64 },
    Abort { txn: u64 },
}

const TABLES: [&str; 2] = ["accounts", "employees"];

fn decode(kind: u32, table: u32, txn: u32, row: u32) -> Step {
    let table = (table % 2) as usize;
    let txn = u64::from(txn % 4) + 1;
    let row = u64::from(row % 8);
    match kind % 6 {
        0 | 1 => Step::Insert {
            table,
            txn,
            value: i64::from(kind) + row as i64,
        },
        2 | 3 => Step::Update { table, txn, row },
        4 => {
            if row % 2 == 0 {
                Step::Delete { table, txn, row }
            } else {
                Step::Commit { txn }
            }
        }
        _ => {
            if row % 2 == 0 {
                Step::Commit { txn }
            } else {
                Step::Abort { txn }
            }
        }
    }
}

/// Apply one step to a single backend, without comparisons (used by the
/// concurrent-reader property, where the two backends are replayed in
/// separate phases).
fn apply_one(step: Step, store: &dyn StorageBackend, next_ts: &mut u64) {
    match step {
        Step::Insert { table, txn, value } => {
            let row = Row::new()
                .with("balance", value)
                .with("owner", format!("t{txn}").as_str());
            store.insert(TABLES[table], TxnToken(txn), row);
        }
        Step::Update { table, txn, row } => {
            let _ = store.update(
                TABLES[table],
                TxnToken(txn),
                RowId(row),
                Row::new().with("balance", -(row as i64)),
            );
        }
        Step::Delete { table, txn, row } => {
            let _ = store.delete(TABLES[table], TxnToken(txn), RowId(row));
        }
        Step::Commit { txn } => {
            *next_ts += 1;
            store.commit(TxnToken(txn), Timestamp(*next_ts));
        }
        Step::Abort { txn } => {
            store.abort(TxnToken(txn));
        }
    }
}

/// Apply one step to both backends and check the write-path results agree.
fn apply(step: Step, a: &dyn StorageBackend, b: &dyn StorageBackend, next_ts: &mut u64) {
    match step {
        Step::Insert { table, txn, value } => {
            let row = Row::new()
                .with("balance", value)
                .with("owner", format!("t{txn}").as_str());
            let ia = a.insert(TABLES[table], TxnToken(txn), row.clone());
            let ib = b.insert(TABLES[table], TxnToken(txn), row);
            prop_assert_eq!(ia, ib, "insert row id");
        }
        Step::Update { table, txn, row } => {
            let new = Row::new().with("balance", -(row as i64));
            let ra = a.update(TABLES[table], TxnToken(txn), RowId(row), new.clone());
            let rb = b.update(TABLES[table], TxnToken(txn), RowId(row), new);
            prop_assert_eq!(&ra, &rb, "update outcome");
        }
        Step::Delete { table, txn, row } => {
            let ra = a.delete(TABLES[table], TxnToken(txn), RowId(row));
            let rb = b.delete(TABLES[table], TxnToken(txn), RowId(row));
            prop_assert_eq!(&ra, &rb, "delete outcome");
        }
        Step::Commit { txn } => {
            *next_ts += 1;
            a.commit(TxnToken(txn), Timestamp(*next_ts));
            b.commit(TxnToken(txn), Timestamp(*next_ts));
        }
        Step::Abort { txn } => {
            a.abort(TxnToken(txn));
            b.abort(TxnToken(txn));
        }
    }
}

/// Every read surface of both backends must agree exactly.
fn assert_equivalent(a: &dyn StorageBackend, b: &dyn StorageBackend, max_ts: u64) {
    let pair = format!("{} vs {}", a.backend_name(), b.backend_name());
    prop_assert_eq!(a.tables(), b.tables(), "tables ({})", &pair);
    prop_assert_eq!(
        a.version_count(),
        b.version_count(),
        "version_count ({})",
        &pair
    );

    for table in TABLES {
        let ids = a.row_ids(table);
        prop_assert_eq!(&ids, &b.row_ids(table), "row ids of {} ({})", table, &pair);
        prop_assert_eq!(
            a.committed_row_count(table),
            b.committed_row_count(table),
            "committed_row_count {} ({})",
            table,
            &pair
        );

        for id in ids {
            prop_assert_eq!(
                a.get_latest_any(table, id),
                b.get_latest_any(table, id),
                "latest_any {}{:?} ({})",
                table,
                id,
                &pair
            );
            prop_assert_eq!(
                a.get_latest_committed(table, id),
                b.get_latest_committed(table, id),
                "latest_committed {}{:?} ({})",
                table,
                id,
                &pair
            );
            for ts in 0..=max_ts {
                prop_assert_eq!(
                    a.get_committed_as_of(table, id, Timestamp(ts)),
                    b.get_committed_as_of(table, id, Timestamp(ts)),
                    "as_of ts{} {}{:?} ({})",
                    ts,
                    table,
                    id,
                    &pair
                );
            }
            for reader in 1..=4u64 {
                prop_assert_eq!(
                    a.get_visible(table, id, TxnToken(reader), Timestamp(max_ts)),
                    b.get_visible(table, id, TxnToken(reader), Timestamp(max_ts)),
                    "visible_for txn{} {}{:?} ({})",
                    reader,
                    table,
                    id,
                    &pair
                );
            }
        }

        // Scans agree, in order, on every visibility surface, including
        // predicate filtering and snapshots.
        let all = RowPredicate::whole_table(table);
        let negative = RowPredicate::new(table, Condition::compare("balance", Comparison::Lt, 0));
        for predicate in [&all, &negative] {
            prop_assert_eq!(
                a.scan_latest_any(predicate),
                b.scan_latest_any(predicate),
                "scan_latest_any {} ({})",
                table,
                &pair
            );
            prop_assert_eq!(
                a.scan_latest_committed(predicate),
                b.scan_latest_committed(predicate),
                "scan_latest_committed {} ({})",
                table,
                &pair
            );
            prop_assert_eq!(
                a.scan_visible(predicate, TxnToken(1), Timestamp(max_ts)),
                b.scan_visible(predicate, TxnToken(1), Timestamp(max_ts)),
                "scan_visible {} ({})",
                table,
                &pair
            );
        }
        for ts in [0, max_ts / 2, max_ts] {
            prop_assert_eq!(
                a.snapshot(Timestamp(ts)).scan(&all),
                b.snapshot(Timestamp(ts)).scan(&all),
                "snapshot scan ts{} {} ({})",
                ts,
                table,
                &pair
            );
        }

        // Range scans agree *in order* on every visibility surface — for
        // the table with an ordered index ("accounts") and for the
        // unindexed one (where scan_range falls back to filtering the full
        // scan) alike — and the shared order is the pinned (key, row id)
        // contract, not merely "both backends picked the same accident".
        prop_assert_eq!(
            a.indexed_column(table),
            b.indexed_column(table),
            "indexed_column {} ({})",
            table,
            &pair
        );
        let intervals = [
            KeyInterval::range(None, None),
            KeyInterval::range(Some(-8), Some(0)),
            KeyInterval::range(Some(0), None),
            KeyInterval::range(None, Some(3)),
        ];
        let views = [
            ScanView::LatestAny,
            ScanView::LatestCommitted,
            ScanView::CommittedAsOf(Timestamp(max_ts / 2)),
            ScanView::Visible {
                reader: TxnToken(1),
                start_ts: Timestamp(max_ts),
            },
        ];
        for interval in &intervals {
            for view in views {
                let ra = a.scan_range(table, "balance", interval, view);
                let rb = b.scan_range(table, "balance", interval, view);
                prop_assert_eq!(
                    &ra,
                    &rb,
                    "scan_range {} {:?} {:?} ({})",
                    table,
                    interval,
                    view,
                    &pair
                );
                let keys: Vec<(i64, RowId)> = ra
                    .iter()
                    .map(|(id, row)| (row.get_int("balance").expect("keyed row"), *id))
                    .collect();
                let mut sorted = keys.clone();
                sorted.sort_unstable();
                prop_assert_eq!(
                    &keys,
                    &sorted,
                    "scan_range order {} {:?} {:?} ({})",
                    table,
                    interval,
                    view,
                    &pair
                );
                prop_assert!(
                    keys.iter().all(|(key, _)| interval.contains(*key)),
                    "scan_range bounds {} {:?} {:?} ({})",
                    table,
                    interval,
                    view,
                    &pair
                );
            }
        }
    }

    for txn in 1..=4u64 {
        prop_assert_eq!(
            a.writes_of(TxnToken(txn)),
            b.writes_of(TxnToken(txn)),
            "writes_of txn{} ({})",
            txn,
            &pair
        );
        prop_assert_eq!(
            a.has_foreign_uncommitted_on_writes(TxnToken(txn)),
            b.has_foreign_uncommitted_on_writes(TxnToken(txn)),
            "has_foreign_uncommitted txn{} ({})",
            txn,
            &pair
        );
        for ts in [0, max_ts / 2, max_ts] {
            prop_assert_eq!(
                a.first_committer_conflict(TxnToken(txn), Timestamp(ts)),
                b.first_committer_conflict(TxnToken(txn), Timestamp(ts)),
                "fcw txn{} ts{} ({})",
                txn,
                ts,
                &pair
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Identical op sequences leave the chain store and the log store in
    /// identical visible states — with the log store's segment size,
    /// compaction watermark, and spill flag randomised so rollover,
    /// remapping, and the codec are all exercised.
    #[test]
    fn logstore_matches_mvstore_semantics(
        steps in proptest::collection::vec((0u32..6, 0u32..2, 0u32..4, 0u32..8), 1..60),
        segment_records in 1usize..9,
        compact_watermark in 1usize..5,
        spill in proptest::bool::ANY,
        shards in 1u32..17,
    ) {
        let reference = MvStore::with_shards(shards as usize);
        let log = LogStore::with_config(LogStoreConfig {
            segment_records,
            compact_watermark,
            spill,
            shards: shards as usize,
            ..LogStoreConfig::default()
        });
        // One table gets an ordered index, the other exercises the
        // unindexed scan_range fallback.
        for store in [&reference as &dyn StorageBackend, &log] {
            store.create_table(TABLES[0]);
            store.create_index(TABLES[0], "balance");
        }
        let mut next_ts = 0u64;
        for (kind, table, txn, row) in steps {
            apply(decode(kind, table, txn, row), &reference, &log, &mut next_ts);
        }
        assert_equivalent(&reference, &log, next_ts.max(1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concurrent epoch-path readers never perturb the visible state: the
    /// same op sequence is replayed on the chain store *while* reader
    /// threads race every lock-free read surface (with a randomised
    /// interleaving: each reader starts after a randomly chosen step and
    /// spins a random number of rounds), then replayed quietly on the log
    /// store, and the two must still agree bit-for-bit everywhere.  The
    /// storm also proves the acceptance invariant on a live workload:
    /// racing epoch readers take zero stripe read-locks.
    #[test]
    fn epoch_readers_race_writers_without_perturbing_equivalence(
        steps in proptest::collection::vec((0u32..6, 0u32..2, 0u32..4, 0u32..8), 1..40),
        shards in 1u32..9,
        readers in 1usize..4,
        start_after in 0usize..40,
        rounds in 8u64..64,
    ) {
        use std::sync::atomic::{AtomicBool, Ordering};

        let reference = MvStore::with_shards(shards as usize);
        reference.create_table(TABLES[0]);
        reference.create_index(TABLES[0], "balance");

        let start_after = start_after.min(steps.len().saturating_sub(1));
        let stop = &AtomicBool::new(false);
        let started = &AtomicBool::new(false);
        let mut next_ts = 0u64;
        std::thread::scope(|scope| {
            let reference = &reference;
            for reader in 0..readers {
                scope.spawn(move || {
                    while !started.load(Ordering::Relaxed) && !stop.load(Ordering::Relaxed) {
                        std::thread::yield_now();
                    }
                    let mut spins = 0u64;
                    while !stop.load(Ordering::Relaxed) || spins < rounds {
                        for table in TABLES {
                            let all = RowPredicate::whole_table(table);
                            let _ = reference.scan_latest_committed(&all);
                            let _ = reference.scan_visible(
                                &all,
                                TxnToken(u64::MAX - reader as u64),
                                Timestamp(1 + spins % 16),
                            );
                            let _ = reference.get_latest_any(table, RowId(spins % 8));
                            let _ = reference.get_committed_as_of(
                                table,
                                RowId(spins % 8),
                                Timestamp(spins % 16),
                            );
                            let _ = reference.scan_range(
                                table,
                                "balance",
                                &KeyInterval::range(Some(-8), Some(8)),
                                ScanView::LatestCommitted,
                            );
                        }
                        spins += 1;
                    }
                });
            }
            for (i, &(kind, table, txn, row)) in steps.iter().enumerate() {
                if i == start_after {
                    started.store(true, Ordering::Relaxed);
                }
                apply_one(decode(kind, table, txn, row), reference, &mut next_ts);
            }
            started.store(true, Ordering::Relaxed);
            stop.store(true, Ordering::Relaxed);
        });

        // The racing readers ran entirely on the epoch path: no stripe
        // read-lock was ever taken.
        prop_assert_eq!(reference.read_stats().read_lock_acquisitions(), 0);
        prop_assert!(reference.read_stats().read_pins() > 0);

        // Quiet replay on the log store; the storm must not have changed
        // what the chain store ended up with.
        let log = LogStore::with_config(LogStoreConfig::default());
        log.create_table(TABLES[0]);
        log.create_index(TABLES[0], "balance");
        let mut log_ts = 0u64;
        for (kind, table, txn, row) in steps {
            apply_one(decode(kind, table, txn, row), &log, &mut log_ts);
        }
        assert_equivalent(&reference, &log, next_ts.max(1));
    }
}
