//! Torn-tail recovery: the write-ahead log must tolerate a final frame
//! truncated at *any* byte boundary, dropping exactly the unterminated
//! suffix and never a committed record.
//!
//! The harness builds one write-ahead file from a known serial workload
//! (txn `k` commits value `k` at timestamp `k`), then recovers a copy of
//! the directory truncated at every prefix length.  Two invariants are
//! checked at each boundary:
//!
//! * **no committed record is lost** — if recovery reports
//!   `last_commit_ts == k`, every transaction `1..=k` is fully readable
//!   (latest value and each historical version);
//! * **exactly the suffix is dropped** — the recovered commit count is
//!   monotone in the prefix length, grows by at most one commit per
//!   byte, and reaches the full count at the untruncated length.

use critique_storage::{LogStore, LogStoreConfig, Row, RowId, StorageBackend, Timestamp, TxnToken};
use std::fs;
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "critique-torn-tail-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn balance_row(v: i64) -> Row {
    Row::new().with("balance", v)
}

/// Write the reference log: insert then N-1 updates of one row, each
/// committed at its own timestamp.  Returns the wal bytes and manifest.
fn build_reference_log(commits: u64) -> (Vec<u8>, Vec<u8>) {
    let dir = scratch_dir("reference");
    {
        let store = LogStore::open_durable(&dir, LogStoreConfig::default()).unwrap();
        let id = store.insert("t", TxnToken(1), balance_row(1));
        assert_eq!(id, RowId(0));
        store.commit(TxnToken(1), Timestamp(1));
        for k in 2..=commits {
            store
                .update("t", TxnToken(k), RowId(0), balance_row(k as i64))
                .unwrap();
            store.commit(TxnToken(k), Timestamp(k));
        }
    }
    let wal = fs::read(dir.join("wal-0-0-0.seg")).unwrap();
    let manifest = fs::read(dir.join("MANIFEST")).unwrap();
    let _ = fs::remove_dir_all(&dir);
    (wal, manifest)
}

#[test]
fn recovery_tolerates_a_torn_tail_at_every_byte_boundary() {
    const COMMITS: u64 = 12;
    let (wal, manifest) = build_reference_log(COMMITS);
    let dir = scratch_dir("truncate");
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join("MANIFEST"), &manifest).unwrap();

    let mut prev_commits = 0u64;
    for len in 0..=wal.len() {
        fs::write(dir.join("wal-0-0-0.seg"), &wal[..len]).unwrap();
        let store = LogStore::recover(&dir)
            .unwrap_or_else(|e| panic!("recovery at truncation {len} failed: {e}"));
        let recovered = store.last_commit_ts().map_or(0, |ts| ts.0);

        // Exactly the suffix is dropped: monotone, at most one commit per
        // extra byte (a commit frame completes at a single length).
        assert!(
            recovered >= prev_commits,
            "truncation {len}: commit count went backwards ({prev_commits} -> {recovered})"
        );
        assert!(
            recovered - prev_commits <= 1,
            "truncation {len}: {} commits appeared at one byte boundary",
            recovered - prev_commits
        );
        prev_commits = recovered;

        // Never a committed record lost: every covered transaction is
        // fully readable, latest and historically.
        if recovered > 0 {
            assert_eq!(
                store
                    .get_latest_committed("t", RowId(0))
                    .unwrap()
                    .get_int("balance"),
                Some(recovered as i64),
                "truncation {len}: latest committed value"
            );
            for k in 1..=recovered {
                assert_eq!(
                    store
                        .get_committed_as_of("t", RowId(0), Timestamp(k))
                        .unwrap()
                        .get_int("balance"),
                    Some(k as i64),
                    "truncation {len}: version committed at ts {k}"
                );
            }
        } else {
            assert!(store.get_latest_committed("t", RowId(0)).is_none());
        }

        // Whatever survived must itself recover identically: the torn
        // suffix was truncated away on disk, not just skipped in memory.
        drop(store);
        let again = LogStore::recover(&dir).unwrap();
        assert_eq!(
            again.last_commit_ts().map_or(0, |ts| ts.0),
            recovered,
            "truncation {len}: second recovery disagrees with the first"
        );
    }
    assert_eq!(
        prev_commits, COMMITS,
        "the untruncated log must recover every commit"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_frame_in_a_sealed_file_is_corruption() {
    // Two wal files (a sealed one and the open tail): a torn frame in the
    // *sealed* file is not a crash artefact — recovery must refuse it.
    let dir = scratch_dir("sealed-tear");
    {
        let store = LogStore::open_durable(
            &dir,
            LogStoreConfig {
                segment_records: 2,
                compact_watermark: 1024,
                spill: false,
                ..LogStoreConfig::default()
            },
        )
        .unwrap();
        for k in 0..4u64 {
            store.insert("t", TxnToken(10 + k), balance_row(k as i64));
            store.commit(TxnToken(10 + k), Timestamp(1 + k));
        }
        assert!(store.segment_count() >= 2);
    }
    let sealed = dir.join("wal-0-0-0.seg");
    let bytes = fs::read(&sealed).unwrap();
    fs::write(&sealed, &bytes[..bytes.len() - 1]).unwrap();
    let err = LogStore::recover(&dir).expect_err("a torn sealed file must fail recovery");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn missing_middle_file_in_a_chain_is_refused() {
    // A lost sealed file is corruption, not absent data: silently
    // replaying the rest of the chain would drop committed records
    // without a word.  Recovery must refuse the gap.
    let dir = scratch_dir("chain-gap");
    {
        let store = LogStore::open_durable(
            &dir,
            LogStoreConfig {
                segment_records: 2,
                ..LogStoreConfig::default()
            },
        )
        .unwrap();
        for k in 0..6u64 {
            store.insert("t", TxnToken(10 + k), balance_row(k as i64));
            store.commit(TxnToken(10 + k), Timestamp(1 + k));
        }
        assert!(store.segment_count() >= 3);
    }
    fs::remove_file(dir.join("wal-0-0-1.seg")).unwrap();
    let err = LogStore::recover(&dir).expect_err("a gapped chain must fail recovery");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn wholly_missing_shard_chain_is_refused() {
    // Every shard's chain exists from the moment the store opens; a
    // shard with no files for its live generation lost them.  Treating
    // it as "no data" would silently erase that shard's committed rows.
    let dir = scratch_dir("missing-chain");
    {
        let store = LogStore::open_durable(
            &dir,
            LogStoreConfig {
                shards: 2,
                ..LogStoreConfig::default()
            },
        )
        .unwrap();
        for i in 0..4 {
            store.insert("t", TxnToken(1), balance_row(i));
        }
        store.commit(TxnToken(1), Timestamp(1));
    }
    fs::remove_file(dir.join("wal-1-0-0.seg")).unwrap();
    let err = LogStore::recover(&dir).expect_err("a missing shard chain must fail recovery");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovery_deletes_orphans_of_other_generations() {
    let dir = scratch_dir("orphans");
    {
        let store = LogStore::open_durable(&dir, LogStoreConfig::default()).unwrap();
        store.insert("t", TxnToken(1), balance_row(7));
        store.commit(TxnToken(1), Timestamp(1));
    }
    // A rewrite that crashed before its manifest swap leaves files of a
    // generation the manifest never names; a crashed re-shard can leave
    // files of a shard the manifest does not cover.
    fs::write(dir.join("wal-0-9-0.seg"), b"garbage from a dead rewrite").unwrap();
    fs::write(dir.join("wal-7-0-0.seg"), b"garbage from a dead re-shard").unwrap();
    let store = LogStore::recover(&dir).unwrap();
    assert_eq!(
        store
            .get_latest_committed("t", RowId(0))
            .unwrap()
            .get_int("balance"),
        Some(7)
    );
    assert!(
        !dir.join("wal-0-9-0.seg").exists(),
        "orphan must be deleted"
    );
    assert!(
        !dir.join("wal-7-0-0.seg").exists(),
        "out-of-range shard orphan must be deleted"
    );
    drop(store);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn one_shard_torn_tail_recovers_consistently_across_shards() {
    // The sharded layout's crash surface: one shard's open file loses its
    // un-synced tail while every other shard is clean.  Per-shard torn-tail
    // truncation plus the cross-shard commit merge must still produce a
    // consistent store — all committed transactions readable, the
    // commit-less writer aborted everywhere.
    let dir = scratch_dir("shard-tear");
    let cfg = LogStoreConfig {
        shards: 4,
        ..LogStoreConfig::default()
    };
    {
        let store = LogStore::open_durable(&dir, cfg).unwrap();
        for i in 0..8 {
            store.insert("t", TxnToken(1), balance_row(i));
        }
        store.commit(TxnToken(1), Timestamp(1));
        for k in 0..8u64 {
            store
                .update("t", TxnToken(2 + k), RowId(k), balance_row(100 + k as i64))
                .unwrap();
            store.commit(TxnToken(2 + k), Timestamp(2 + k));
        }
        // In flight at the crash, touching every row: every data shard's
        // open file ends in commit-less Write frames.
        for k in 0..8u64 {
            store
                .update("t", TxnToken(50), RowId(k), balance_row(-1))
                .unwrap();
        }
    }
    // Tear one data shard's tail mid-frame; the others stay clean.
    let torn = (1..4)
        .find(|sid| {
            let path = dir.join(format!("wal-{sid}-0-0.seg"));
            match fs::read(&path) {
                Ok(bytes) if !bytes.is_empty() => {
                    fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
                    true
                }
                _ => false,
            }
        })
        .expect("8 rows over 4 shards must populate a data shard");
    let store = LogStore::recover(&dir).unwrap();
    for k in 0..8u64 {
        assert_eq!(
            store
                .get_latest_committed("t", RowId(k))
                .unwrap()
                .get_int("balance"),
            Some(100 + k as i64),
            "row {k} after tearing shard {torn}"
        );
    }
    assert_eq!(store.last_commit_ts(), Some(Timestamp(9)));
    assert!(
        store.writes_of(TxnToken(50)).is_empty(),
        "the commit-less writer lost the crash in every shard"
    );
    // The recovered store recovers again to the same state: the torn
    // suffix was truncated on disk, not just skipped in memory.
    drop(store);
    let again = LogStore::recover(&dir).unwrap();
    assert_eq!(again.last_commit_ts(), Some(Timestamp(9)));
    assert_eq!(again.committed_row_count("t"), 8);
    drop(again);
    let _ = fs::remove_dir_all(&dir);
}
