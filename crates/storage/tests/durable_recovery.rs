//! Torn-tail recovery: the write-ahead log must tolerate a final frame
//! truncated at *any* byte boundary, dropping exactly the unterminated
//! suffix and never a committed record.
//!
//! The harness builds one write-ahead file from a known serial workload
//! (txn `k` commits value `k` at timestamp `k`), then recovers a copy of
//! the directory truncated at every prefix length.  Two invariants are
//! checked at each boundary:
//!
//! * **no committed record is lost** — if recovery reports
//!   `last_commit_ts == k`, every transaction `1..=k` is fully readable
//!   (latest value and each historical version);
//! * **exactly the suffix is dropped** — the recovered commit count is
//!   monotone in the prefix length, grows by at most one commit per
//!   byte, and reaches the full count at the untruncated length.

use critique_storage::{LogStore, LogStoreConfig, Row, RowId, StorageBackend, Timestamp, TxnToken};
use std::fs;
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "critique-torn-tail-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn balance_row(v: i64) -> Row {
    Row::new().with("balance", v)
}

/// Write the reference log: insert then N-1 updates of one row, each
/// committed at its own timestamp.  Returns the wal bytes and manifest.
fn build_reference_log(commits: u64) -> (Vec<u8>, Vec<u8>) {
    let dir = scratch_dir("reference");
    {
        let store = LogStore::open_durable(&dir, LogStoreConfig::default()).unwrap();
        let id = store.insert("t", TxnToken(1), balance_row(1));
        assert_eq!(id, RowId(0));
        store.commit(TxnToken(1), Timestamp(1));
        for k in 2..=commits {
            store
                .update("t", TxnToken(k), RowId(0), balance_row(k as i64))
                .unwrap();
            store.commit(TxnToken(k), Timestamp(k));
        }
    }
    let wal = fs::read(dir.join("wal-0-0.seg")).unwrap();
    let manifest = fs::read(dir.join("MANIFEST")).unwrap();
    let _ = fs::remove_dir_all(&dir);
    (wal, manifest)
}

#[test]
fn recovery_tolerates_a_torn_tail_at_every_byte_boundary() {
    const COMMITS: u64 = 12;
    let (wal, manifest) = build_reference_log(COMMITS);
    let dir = scratch_dir("truncate");
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join("MANIFEST"), &manifest).unwrap();

    let mut prev_commits = 0u64;
    for len in 0..=wal.len() {
        fs::write(dir.join("wal-0-0.seg"), &wal[..len]).unwrap();
        let store = LogStore::recover(&dir)
            .unwrap_or_else(|e| panic!("recovery at truncation {len} failed: {e}"));
        let recovered = store.last_commit_ts().map_or(0, |ts| ts.0);

        // Exactly the suffix is dropped: monotone, at most one commit per
        // extra byte (a commit frame completes at a single length).
        assert!(
            recovered >= prev_commits,
            "truncation {len}: commit count went backwards ({prev_commits} -> {recovered})"
        );
        assert!(
            recovered - prev_commits <= 1,
            "truncation {len}: {} commits appeared at one byte boundary",
            recovered - prev_commits
        );
        prev_commits = recovered;

        // Never a committed record lost: every covered transaction is
        // fully readable, latest and historically.
        if recovered > 0 {
            assert_eq!(
                store
                    .get_latest_committed("t", RowId(0))
                    .unwrap()
                    .get_int("balance"),
                Some(recovered as i64),
                "truncation {len}: latest committed value"
            );
            for k in 1..=recovered {
                assert_eq!(
                    store
                        .get_committed_as_of("t", RowId(0), Timestamp(k))
                        .unwrap()
                        .get_int("balance"),
                    Some(k as i64),
                    "truncation {len}: version committed at ts {k}"
                );
            }
        } else {
            assert!(store.get_latest_committed("t", RowId(0)).is_none());
        }

        // Whatever survived must itself recover identically: the torn
        // suffix was truncated away on disk, not just skipped in memory.
        drop(store);
        let again = LogStore::recover(&dir).unwrap();
        assert_eq!(
            again.last_commit_ts().map_or(0, |ts| ts.0),
            recovered,
            "truncation {len}: second recovery disagrees with the first"
        );
    }
    assert_eq!(
        prev_commits, COMMITS,
        "the untruncated log must recover every commit"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_frame_in_a_sealed_file_is_corruption() {
    // Two wal files (a sealed one and the open tail): a torn frame in the
    // *sealed* file is not a crash artefact — recovery must refuse it.
    let dir = scratch_dir("sealed-tear");
    {
        let store = LogStore::open_durable(
            &dir,
            LogStoreConfig {
                segment_records: 2,
                compact_watermark: 1024,
                spill: false,
            },
        )
        .unwrap();
        for k in 0..4u64 {
            store.insert("t", TxnToken(10 + k), balance_row(k as i64));
            store.commit(TxnToken(10 + k), Timestamp(1 + k));
        }
        assert!(store.segment_count() >= 2);
    }
    let sealed = dir.join("wal-0-0.seg");
    let bytes = fs::read(&sealed).unwrap();
    fs::write(&sealed, &bytes[..bytes.len() - 1]).unwrap();
    let err = LogStore::recover(&dir).expect_err("a torn sealed file must fail recovery");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovery_deletes_orphans_of_other_generations() {
    let dir = scratch_dir("orphans");
    {
        let store = LogStore::open_durable(&dir, LogStoreConfig::default()).unwrap();
        store.insert("t", TxnToken(1), balance_row(7));
        store.commit(TxnToken(1), Timestamp(1));
    }
    // A rewrite that crashed before its manifest swap leaves files of a
    // generation the manifest never names.
    fs::write(dir.join("wal-9-0.seg"), b"garbage from a dead rewrite").unwrap();
    let store = LogStore::recover(&dir).unwrap();
    assert_eq!(
        store
            .get_latest_committed("t", RowId(0))
            .unwrap()
            .get_int("balance"),
        Some(7)
    );
    assert!(!dir.join("wal-9-0.seg").exists(), "orphan must be deleted");
    drop(store);
    let _ = fs::remove_dir_all(&dir);
}
