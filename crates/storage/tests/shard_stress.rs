//! Stress and conformance tests for the sharded store.
//!
//! Two families:
//!
//! * **threaded stress** — many writers hammer the per-table row-id
//!   allocator, the shard locks, and the write-set partitions at once; the
//!   assertions are "no lost row ids" (allocation stays gap-free and
//!   unique) and "no lost committed writes" (every committed version is
//!   visible afterwards, across whatever shard its row hashed to);
//! * **model conformance** — a property test drives the sharded store and
//!   a single-map reference model (built on the same [`VersionChain`]
//!   type, mirroring the pre-sharding layout) through random operation
//!   sequences and requires every read surface to agree.

use critique_storage::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Threaded stress.
// ---------------------------------------------------------------------

const THREADS: u64 = 8;

#[test]
fn concurrent_inserts_lose_no_row_ids() {
    for shards in [1, 4, 16] {
        let store = Arc::new(MvStore::with_shards(shards));
        let per_thread = 200u64;
        std::thread::scope(|scope| {
            for worker in 0..THREADS {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    let txn = TxnToken(worker + 1);
                    for i in 0..per_thread {
                        let marker = (worker * per_thread + i) as i64;
                        store.insert("accounts", txn, Row::new().with("marker", marker));
                    }
                    store.commit(txn, Timestamp(worker + 1));
                });
            }
        });
        let total = THREADS * per_thread;
        let ids = store.row_ids("accounts");
        assert_eq!(ids.len() as u64, total, "shards={shards}");
        // Gap-free and unique: ids are exactly 0..total.
        assert_eq!(
            ids,
            (0..total).map(RowId).collect::<Vec<_>>(),
            "shards={shards}"
        );
        assert_eq!(store.committed_row_count("accounts") as u64, total);
        assert_eq!(store.version_count() as u64, total);
    }
}

#[test]
fn concurrent_commits_lose_no_writes() {
    // Each worker owns a disjoint slice of rows and runs many small
    // update-commit transactions against them; afterwards every row must
    // carry its worker's final value — a write lost by commit racing on a
    // shared shard would show up as a stale balance.
    let store = Arc::new(MvStore::with_shards(8));
    let rows_per_worker = 16u64;
    let rounds = 25u64;
    let setup = TxnToken(1);
    let total_rows = THREADS * rows_per_worker;
    let ids: Vec<RowId> = (0..total_rows)
        .map(|_| store.insert("accounts", setup, Row::new().with("balance", 0)))
        .collect();
    store.commit(setup, Timestamp(1));

    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let store = Arc::clone(&store);
            let ids = ids.clone();
            scope.spawn(move || {
                let mine = &ids[(worker * rows_per_worker) as usize
                    ..((worker + 1) * rows_per_worker) as usize];
                for round in 1..=rounds {
                    // Distinct token per (worker, round); commit timestamps
                    // just need to be unique and increasing per worker.
                    let txn = TxnToken(100 + worker * rounds + round);
                    for id in mine {
                        store
                            .update(
                                "accounts",
                                txn,
                                *id,
                                Row::new().with("balance", round as i64),
                            )
                            .expect("own row exists");
                    }
                    store.commit(txn, Timestamp(10 + worker * rounds + round));
                }
            });
        }
    });

    for (i, id) in ids.iter().enumerate() {
        let row = store
            .get_latest_committed("accounts", *id)
            .unwrap_or_else(|| panic!("row {i} lost"));
        assert_eq!(row.get_int("balance"), Some(rounds as i64), "row {i}");
    }
    // Every version every transaction installed is still accounted for.
    assert_eq!(
        store.version_count() as u64,
        total_rows + THREADS * rounds * rows_per_worker
    );
}

#[test]
fn concurrent_aborts_restore_before_images() {
    let store = Arc::new(MvStore::with_shards(4));
    let setup = TxnToken(1);
    let ids: Vec<RowId> = (0..64)
        .map(|_| store.insert("t", setup, Row::new().with("balance", 7)))
        .collect();
    store.commit(setup, Timestamp(1));

    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let store = Arc::clone(&store);
            let ids = ids.clone();
            scope.spawn(move || {
                for round in 0..20u64 {
                    let txn = TxnToken(100 + worker * 20 + round);
                    for id in ids.iter().skip(worker as usize % 4).step_by(4) {
                        store
                            .update("t", txn, *id, Row::new().with("balance", -1))
                            .expect("row exists");
                    }
                    store.abort(txn);
                    assert!(store.writes_of(txn).is_empty());
                }
            });
        }
    });

    for id in &ids {
        assert_eq!(
            store
                .get_latest_committed("t", *id)
                .unwrap()
                .get_int("balance"),
            Some(7)
        );
    }
    assert_eq!(store.version_count(), 64);
}

// ---------------------------------------------------------------------
// Model conformance: the sharded store vs a single-map reference.
// ---------------------------------------------------------------------

/// The pre-sharding layout: one map of tables → rows → version chains plus
/// one write side-map, reusing the workspace's `VersionChain` so the
/// per-version semantics are the known-good seed semantics by construction.
#[derive(Default)]
struct ModelStore {
    tables: BTreeMap<String, ModelTable>,
    writes: BTreeMap<TxnToken, Vec<(String, RowId, WriteKind)>>,
}

#[derive(Default)]
struct ModelTable {
    next_row_id: u64,
    rows: BTreeMap<RowId, VersionChain>,
}

impl ModelStore {
    fn insert(&mut self, table: &str, writer: TxnToken, row: Row) -> RowId {
        let data = self.tables.entry(table.to_string()).or_default();
        let id = RowId(data.next_row_id);
        data.next_row_id += 1;
        data.rows.entry(id).or_default().install(writer, Some(row));
        self.writes
            .entry(writer)
            .or_default()
            .push((table.to_string(), id, WriteKind::Insert));
        id
    }

    fn write_version(
        &mut self,
        table: &str,
        writer: TxnToken,
        id: RowId,
        row: Option<Row>,
        kind: WriteKind,
    ) -> Result<(), ()> {
        let chain = self
            .tables
            .get_mut(table)
            .and_then(|t| t.rows.get_mut(&id))
            .ok_or(())?;
        chain.install(writer, row);
        self.writes
            .entry(writer)
            .or_default()
            .push((table.to_string(), id, kind));
        Ok(())
    }

    fn commit(&mut self, writer: TxnToken, ts: Timestamp) {
        for (table, id, _) in self.writes.remove(&writer).unwrap_or_default() {
            if let Some(chain) = self
                .tables
                .get_mut(&table)
                .and_then(|t| t.rows.get_mut(&id))
            {
                chain.commit(writer, ts);
            }
        }
    }

    fn abort(&mut self, writer: TxnToken) {
        for (table, id, _) in self.writes.remove(&writer).unwrap_or_default() {
            if let Some(chain) = self
                .tables
                .get_mut(&table)
                .and_then(|t| t.rows.get_mut(&id))
            {
                chain.abort(writer);
            }
        }
    }

    fn chain(&self, table: &str, id: RowId) -> Option<&VersionChain> {
        self.tables.get(table).and_then(|t| t.rows.get(&id))
    }

    fn first_committer_conflict(
        &self,
        writer: TxnToken,
        start_ts: Timestamp,
    ) -> Option<(String, RowId)> {
        let writes = self.writes.get(&writer)?;
        for (table, id, _) in writes {
            if let Some(chain) = self.chain(table, *id) {
                if chain.committed_after(start_ts, writer) {
                    return Some((table.clone(), *id));
                }
            }
        }
        None
    }
}

/// One step of a random schedule.  Decoded from the integer tuples the
/// proptest strategy generates.
#[derive(Clone, Copy, Debug)]
enum Step {
    Insert { table: usize, txn: u64, value: i64 },
    Update { table: usize, txn: u64, row: u64 },
    Delete { table: usize, txn: u64, row: u64 },
    Commit { txn: u64 },
    Abort { txn: u64 },
}

const TABLES: [&str; 2] = ["accounts", "employees"];

fn decode(kind: u32, table: u32, txn: u32, row: u32) -> Step {
    let table = (table % 2) as usize;
    let txn = u64::from(txn % 4) + 1;
    let row = u64::from(row % 8);
    match kind % 6 {
        0 | 1 => Step::Insert {
            table,
            txn,
            value: i64::from(kind) + row as i64,
        },
        2 | 3 => Step::Update { table, txn, row },
        4 => {
            if row % 2 == 0 {
                Step::Delete { table, txn, row }
            } else {
                Step::Commit { txn }
            }
        }
        _ => {
            if row % 2 == 0 {
                Step::Commit { txn }
            } else {
                Step::Abort { txn }
            }
        }
    }
}

/// Apply one step to both stores and check the write-path results agree.
fn apply(step: Step, sharded: &MvStore, model: &mut ModelStore, next_ts: &mut u64) {
    match step {
        Step::Insert { table, txn, value } => {
            let row = Row::new().with("balance", value);
            let a = sharded.insert(TABLES[table], TxnToken(txn), row.clone());
            let b = model.insert(TABLES[table], TxnToken(txn), row);
            prop_assert_eq!(a, b, "insert row id");
        }
        Step::Update { table, txn, row } => {
            let new = Row::new().with("balance", -(row as i64));
            let a = sharded.update(TABLES[table], TxnToken(txn), RowId(row), new.clone());
            let b = model.write_version(
                TABLES[table],
                TxnToken(txn),
                RowId(row),
                Some(new),
                WriteKind::Update,
            );
            prop_assert_eq!(a.is_ok(), b.is_ok(), "update outcome");
        }
        Step::Delete { table, txn, row } => {
            let a = sharded.delete(TABLES[table], TxnToken(txn), RowId(row));
            let b = model.write_version(
                TABLES[table],
                TxnToken(txn),
                RowId(row),
                None,
                WriteKind::Delete,
            );
            prop_assert_eq!(a.is_ok(), b.is_ok(), "delete outcome");
        }
        Step::Commit { txn } => {
            *next_ts += 1;
            sharded.commit(TxnToken(txn), Timestamp(*next_ts));
            model.commit(TxnToken(txn), Timestamp(*next_ts));
        }
        Step::Abort { txn } => {
            sharded.abort(TxnToken(txn));
            model.abort(TxnToken(txn));
        }
    }
}

fn assert_same_visible_state(sharded: &MvStore, model: &ModelStore, max_ts: u64) {
    let pick_row = |v: Option<&Version>| v.and_then(|v| v.row.clone());
    for table in TABLES {
        let model_ids: Vec<RowId> = model
            .tables
            .get(table)
            .map(|t| t.rows.keys().copied().collect())
            .unwrap_or_default();
        prop_assert_eq!(
            sharded.row_ids(table),
            model_ids.clone(),
            "row ids of {}",
            table
        );

        for id in model_ids {
            let chain = model.chain(table, id).expect("model id");
            prop_assert_eq!(
                sharded.get_latest_any(table, id),
                pick_row(chain.latest_any()),
                "latest_any {}{:?}",
                table,
                id
            );
            prop_assert_eq!(
                sharded.get_latest_committed(table, id),
                pick_row(chain.latest_committed()),
                "latest_committed {}{:?}",
                table,
                id
            );
            for ts in 0..=max_ts {
                prop_assert_eq!(
                    sharded.get_committed_as_of(table, id, Timestamp(ts)),
                    pick_row(chain.committed_as_of(Timestamp(ts))),
                    "as_of ts{} {}{:?}",
                    ts,
                    table,
                    id
                );
            }
            for reader in 1..=4u64 {
                prop_assert_eq!(
                    sharded.get_visible(table, id, TxnToken(reader), Timestamp(max_ts)),
                    pick_row(chain.visible_for(TxnToken(reader), Timestamp(max_ts))),
                    "visible_for txn{} {}{:?}",
                    reader,
                    table,
                    id
                );
            }
        }

        // Scans agree, in order, including predicate filtering.
        let all = RowPredicate::whole_table(table);
        let model_scan: Vec<(RowId, Row)> = model
            .tables
            .get(table)
            .map(|t| {
                t.rows
                    .iter()
                    .filter_map(|(id, chain)| {
                        pick_row(chain.latest_committed()).map(|row| (*id, row))
                    })
                    .collect()
            })
            .unwrap_or_default();
        prop_assert_eq!(
            sharded.scan_latest_committed(&all),
            model_scan,
            "scan {}",
            table
        );
    }

    for txn in 1..=4u64 {
        prop_assert_eq!(
            sharded.writes_of(TxnToken(txn)),
            model
                .writes
                .get(&TxnToken(txn))
                .cloned()
                .unwrap_or_default(),
            "writes_of txn{}",
            txn
        );
        for ts in [0, max_ts / 2, max_ts] {
            prop_assert_eq!(
                sharded.first_committer_conflict(TxnToken(txn), Timestamp(ts)),
                model.first_committer_conflict(TxnToken(txn), Timestamp(ts)),
                "fcw txn{} ts{}",
                txn,
                ts
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random op sequences leave the sharded store and the single-map
    /// reference in identical visible states, at every shard count.
    #[test]
    fn sharded_store_matches_single_map_semantics(
        steps in proptest::collection::vec((0u32..6, 0u32..2, 0u32..4, 0u32..8), 1..60),
        shards in 1u32..17,
    ) {
        let sharded = MvStore::with_shards(shards as usize);
        let mut model = ModelStore::default();
        let mut next_ts = 0u64;
        for (kind, table, txn, row) in steps {
            apply(decode(kind, table, txn, row), &sharded, &mut model, &mut next_ts);
        }
        assert_same_visible_state(&sharded, &model, next_ts.max(1));
    }
}
