//! Reclamation-safety storm: concurrent readers and writers over one hot
//! version chain, with the epoch-based reclamation invariants asserted as
//! test outcomes rather than trusted.
//!
//! The CI `epoch_stress` leg runs this file in release mode (optimised
//! code reorders more aggressively, so a missing fence is likelier to
//! show) alongside the backend-equivalence property suite.
//!
//! What must hold after the storm:
//!
//! - `reclaimed_while_pinned == 0` — no retired version was freed before
//!   its grace period elapsed (the use-after-free invariant).
//! - `retired > 0` and, after a flush on the quiesced store,
//!   `reclaimed == retired` — superseded versions actually go through the
//!   epoch bags and come out the other side; the counters are not
//!   vacuously zero.
//! - On the epoch path a read-only phase records **zero** stripe-lock
//!   acquisitions while pinning an epoch per read; on the locked baseline
//!   the same phase records a nonzero count (so the zero is an observed
//!   difference, not a dead counter).

use critique_storage::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const WRITER_THREADS: u64 = 4;
const UPDATES_PER_WRITER: u64 = 300;
const READER_THREADS: usize = 4;

/// Seed one committed hot row and return its id.
fn seed_hot_row(store: &MvStore) -> RowId {
    let id = store.insert("hot", TxnToken(1), Row::new().with("balance", 0));
    store.commit(TxnToken(1), Timestamp(1));
    id
}

/// Run the storm: every writer thread supersedes the hot chain's head in a
/// commit/abort mix while reader threads traverse it through every read
/// surface.  Returns the total committed-update count.
fn storm(store: &MvStore, hot: RowId) -> u64 {
    let stop = &AtomicBool::new(false);
    let committed = &std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for reader in 0..READER_THREADS {
            scope.spawn(move || {
                let predicate = RowPredicate::whole_table("hot");
                let mut spins = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Every read surface walks the hot chain: point reads
                    // at several timestamps, predicate scans, snapshots.
                    let _ = store.get_latest_committed("hot", hot);
                    let _ = store.get_latest_any("hot", hot);
                    let _ = store.get_committed_as_of("hot", hot, Timestamp(1 + spins % 64));
                    let _ = store.get_visible(
                        "hot",
                        hot,
                        TxnToken(u64::MAX - reader as u64),
                        Timestamp(1 + spins % 64),
                    );
                    if spins.is_multiple_of(8) {
                        let _ = store.scan_latest_committed(&predicate);
                        let _ = store.snapshot(Timestamp(1 + spins % 64)).scan(&predicate);
                    }
                    spins += 1;
                }
            });
        }
        for writer in 0..WRITER_THREADS {
            scope.spawn(move || {
                for i in 0..UPDATES_PER_WRITER {
                    // Unique tokens per (writer, iteration); timestamps
                    // may interleave arbitrarily across writers — the
                    // chain keeps them newest-first regardless.
                    let token = TxnToken(100 + writer * UPDATES_PER_WRITER + i);
                    let ts = Timestamp(2 + writer * UPDATES_PER_WRITER + i);
                    store
                        .update(
                            "hot",
                            token,
                            hot,
                            Row::new().with("balance", (writer * 1000 + i) as i64),
                        )
                        .expect("hot row exists");
                    // A third of the writes abort: aborted versions are
                    // spliced out of the live chain and must flow through
                    // the same retire path as superseded commits.
                    if i % 3 == 2 {
                        store.abort(token);
                    } else {
                        store.commit(token, ts);
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // Writers run to completion; then the readers are released.
        // (Scoped threads join at the end of the scope, but the readers
        // must see `stop` before that.)  Spawn a stopper that waits on
        // nothing: the writer loops above are finite, so simply flag stop
        // after this closure's spawns by joining in scope order is not
        // possible — instead the writers' completion is detected by the
        // committed counter reaching its target.
        let target = WRITER_THREADS * UPDATES_PER_WRITER * 2 / 3;
        scope.spawn(move || {
            while committed.load(Ordering::Relaxed) < target {
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Relaxed);
        });
    });
    committed.load(Ordering::Relaxed)
}

#[test]
fn storm_reclaims_everything_and_frees_nothing_early() {
    let store = MvStore::with_shards(8);
    let hot = seed_hot_row(&store);
    let committed = storm(&store, hot);
    assert!(committed > 0, "storm committed nothing");

    // Quiesced: no pins remain, so a flush must drain every bag.
    store.flush_reclamation();
    let stats = store.reclamation_stats();
    assert_eq!(
        stats.reclaimed_while_pinned, 0,
        "a version was freed before its grace period elapsed"
    );
    assert!(stats.retired > 0, "no superseded version was ever retired");
    assert_eq!(
        stats.reclaimed, stats.retired,
        "retired versions leaked past a full flush on a quiesced store"
    );

    // The storm's reads all went through the epoch path: pins were taken,
    // stripes were not.
    let reads = store.read_stats();
    assert!(reads.read_pins() > 0);
    assert_eq!(reads.read_lock_acquisitions(), 0);

    // The survivor is intact and readable.
    let last = store
        .get_latest_committed("hot", hot)
        .expect("hot row survives the storm");
    assert!(last.get_int("balance").is_some());
}

#[test]
fn read_only_phase_takes_zero_stripe_locks_on_the_epoch_path_only() {
    for read_path in [ReadPath::Epoch, ReadPath::Locked] {
        let store = MvStore::with_read_path(8, read_path);
        let hot = seed_hot_row(&store);
        // A write phase, then a purely read-only phase whose counter
        // delta is the assertion.
        store
            .update("hot", TxnToken(2), hot, Row::new().with("balance", 7))
            .unwrap();
        store.commit(TxnToken(2), Timestamp(2));

        let before = store.read_stats().read_lock_acquisitions();
        let predicate = RowPredicate::whole_table("hot");
        for ts in 1..=32u64 {
            let _ = store.get_committed_as_of("hot", hot, Timestamp(ts));
            let _ = store.get_latest_committed("hot", hot);
            let _ = store.scan_latest_committed(&predicate);
        }
        let delta = store.read_stats().read_lock_acquisitions() - before;
        match read_path {
            ReadPath::Epoch => assert_eq!(delta, 0, "epoch reads touched a stripe lock"),
            ReadPath::Locked => assert!(delta > 0, "locked baseline counted no acquisitions"),
        }
        assert!(store.read_stats().read_pins() > 0, "{read_path}: no pins");
    }
}

#[test]
fn storm_stays_safe_on_the_locked_baseline_too() {
    // The locked baseline shares the reclamation machinery; the
    // use-after-free invariant is path-independent.
    let store = Arc::new(MvStore::with_read_path(8, ReadPath::Locked));
    let hot = seed_hot_row(&store);
    storm(&store, hot);
    store.flush_reclamation();
    let stats = store.reclamation_stats();
    assert_eq!(stats.reclaimed_while_pinned, 0);
    assert!(stats.retired > 0);
    assert_eq!(stats.reclaimed, stats.retired);
    assert!(store.read_stats().read_lock_acquisitions() > 0);
}
