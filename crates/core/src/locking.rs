//! Table 2: locking isolation levels defined by lock scope, mode, and
//! duration.
//!
//! A [`LockProfile`] is the *specification* of a locking isolation level:
//! what locks a well-behaved transaction must acquire before reading or
//! writing items and predicates, and how long it must hold them.  The
//! `critique-engine` locking scheduler executes these profiles directly, so
//! Table 2 is rendered from the same data structure that drives execution
//! (this is what makes the paper's Remark 6 — Table 2 ≡ Table 3 — an
//! executable claim).

use crate::level::IsolationLevel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a lock covers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum LockScope {
    /// A single data item (record lock).
    Item,
    /// A predicate — all items satisfying a `<search condition>`, including
    /// phantoms.
    Predicate,
}

/// How long a lock is held.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum LockDuration {
    /// Released immediately after the action completes.
    Short,
    /// Held while the cursor is positioned on the item (Cursor Stability);
    /// released when the cursor moves or closes, upgraded to long if the
    /// row is updated.
    Cursor,
    /// Held until after the transaction commits or aborts.
    Long,
}

impl fmt::Display for LockDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LockDuration::Short => "short duration",
            LockDuration::Cursor => "held on current of cursor",
            LockDuration::Long => "long duration",
        };
        write!(f, "{s}")
    }
}

/// Whether a lock is required before an access, and for how long it must be
/// held.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum LockRequirement {
    /// No lock required (e.g. reads at Degree 0 and Degree 1).
    NotRequired,
    /// A well-formed lock of the given duration is required.
    WellFormed(LockDuration),
}

impl LockRequirement {
    /// True when a lock must be acquired at all.
    pub fn is_required(&self) -> bool {
        matches!(self, LockRequirement::WellFormed(_))
    }

    /// The required duration, if a lock is required.
    pub fn duration(&self) -> Option<LockDuration> {
        match self {
            LockRequirement::NotRequired => None,
            LockRequirement::WellFormed(d) => Some(*d),
        }
    }
}

impl fmt::Display for LockRequirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockRequirement::NotRequired => write!(f, "none required"),
            LockRequirement::WellFormed(d) => write!(f, "well-formed, {d}"),
        }
    }
}

/// A row of Table 2: the complete lock discipline of a locking isolation
/// level.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LockProfile {
    /// The level this profile implements.
    pub level: IsolationLevel,
    /// Read locks on individual data items.
    pub read_item: LockRequirement,
    /// Read locks on predicates.
    pub read_predicate: LockRequirement,
    /// Write locks on data items (and predicates — "always the same" per
    /// Table 2).
    pub write: LockRequirement,
}

impl LockProfile {
    /// The Table 2 profile for a lock-based isolation level.  Returns
    /// `None` for the multi-version levels (Snapshot Isolation, Oracle Read
    /// Consistency), which are not defined by locking.
    pub fn for_level(level: IsolationLevel) -> Option<LockProfile> {
        use IsolationLevel::*;
        use LockDuration::*;
        use LockRequirement::*;
        let profile = match level {
            Degree0 => LockProfile {
                level,
                read_item: NotRequired,
                read_predicate: NotRequired,
                write: WellFormed(Short),
            },
            ReadUncommitted => LockProfile {
                level,
                read_item: NotRequired,
                read_predicate: NotRequired,
                write: WellFormed(Long),
            },
            ReadCommitted => LockProfile {
                level,
                read_item: WellFormed(Short),
                read_predicate: WellFormed(Short),
                write: WellFormed(Long),
            },
            CursorStability => LockProfile {
                level,
                read_item: WellFormed(Cursor),
                read_predicate: WellFormed(Short),
                write: WellFormed(Long),
            },
            RepeatableRead => LockProfile {
                level,
                read_item: WellFormed(Long),
                read_predicate: WellFormed(Short),
                write: WellFormed(Long),
            },
            Serializable => LockProfile {
                level,
                read_item: WellFormed(Long),
                read_predicate: WellFormed(Long),
                write: WellFormed(Long),
            },
            SnapshotIsolation | OracleReadConsistency => return None,
        };
        Some(profile)
    }

    /// All rows of Table 2, in the paper's order.
    pub fn table2() -> Vec<LockProfile> {
        [
            IsolationLevel::Degree0,
            IsolationLevel::ReadUncommitted,
            IsolationLevel::ReadCommitted,
            IsolationLevel::CursorStability,
            IsolationLevel::RepeatableRead,
            IsolationLevel::Serializable,
        ]
        .into_iter()
        .filter_map(LockProfile::for_level)
        .collect()
    }

    /// True when this profile requires full two-phase, well-formed locking
    /// (the condition of the fundamental serialization theorem).
    pub fn is_two_phase_well_formed(&self) -> bool {
        self.read_item == LockRequirement::WellFormed(LockDuration::Long)
            && self.read_predicate == LockRequirement::WellFormed(LockDuration::Long)
            && self.write == LockRequirement::WellFormed(LockDuration::Long)
    }

    /// Render this row as the paper's Table 2 prints it.
    pub fn describe(&self) -> String {
        let read = if self.read_item == self.read_predicate {
            format!("Read locks (items and predicates): {}", self.read_item)
        } else {
            format!(
                "Read locks: items {}; predicates {}",
                self.read_item, self.read_predicate
            )
        };
        format!(
            "{}: {}; Write locks (items and predicates): {}",
            self.level, read, self.write
        )
    }

    /// Partial order on profiles: `self` is at least as strict as `other`
    /// when every lock requirement is at least as strong (required where
    /// required, and held at least as long).
    pub fn at_least_as_strict_as(&self, other: &LockProfile) -> bool {
        fn geq(a: LockRequirement, b: LockRequirement) -> bool {
            match (a, b) {
                (_, LockRequirement::NotRequired) => true,
                (LockRequirement::NotRequired, LockRequirement::WellFormed(_)) => false,
                (LockRequirement::WellFormed(da), LockRequirement::WellFormed(db)) => da >= db,
            }
        }
        geq(self.read_item, other.read_item)
            && geq(self.read_predicate, other.read_predicate)
            && geq(self.write, other.write)
    }
}

impl fmt::Display for LockProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_six_rows_in_order() {
        let rows = LockProfile::table2();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].level, IsolationLevel::Degree0);
        assert_eq!(rows[5].level, IsolationLevel::Serializable);
    }

    #[test]
    fn multiversion_levels_have_no_lock_profile() {
        assert!(LockProfile::for_level(IsolationLevel::SnapshotIsolation).is_none());
        assert!(LockProfile::for_level(IsolationLevel::OracleReadConsistency).is_none());
    }

    #[test]
    fn degree0_only_requires_short_write_locks() {
        let p = LockProfile::for_level(IsolationLevel::Degree0).unwrap();
        assert!(!p.read_item.is_required());
        assert_eq!(p.write, LockRequirement::WellFormed(LockDuration::Short));
    }

    #[test]
    fn all_levels_above_degree0_hold_long_write_locks() {
        // The paper's Remark 3 / recovery argument: even the weakest locking
        // systems hold long write locks.
        for p in LockProfile::table2().into_iter().skip(1) {
            assert_eq!(
                p.write,
                LockRequirement::WellFormed(LockDuration::Long),
                "{} must hold long write locks",
                p.level
            );
        }
    }

    #[test]
    fn only_serializable_is_fully_two_phase_well_formed() {
        for p in LockProfile::table2() {
            assert_eq!(
                p.is_two_phase_well_formed(),
                p.level == IsolationLevel::Serializable,
                "{}",
                p.level
            );
        }
    }

    #[test]
    fn profiles_grow_monotonically_in_strictness_along_remark1() {
        let order = [
            IsolationLevel::ReadUncommitted,
            IsolationLevel::ReadCommitted,
            IsolationLevel::RepeatableRead,
            IsolationLevel::Serializable,
        ];
        for pair in order.windows(2) {
            let weaker = LockProfile::for_level(pair[0]).unwrap();
            let stronger = LockProfile::for_level(pair[1]).unwrap();
            assert!(stronger.at_least_as_strict_as(&weaker));
            assert!(!weaker.at_least_as_strict_as(&stronger));
        }
    }

    #[test]
    fn cursor_stability_sits_between_read_committed_and_repeatable_read() {
        let rc = LockProfile::for_level(IsolationLevel::ReadCommitted).unwrap();
        let cs = LockProfile::for_level(IsolationLevel::CursorStability).unwrap();
        let rr = LockProfile::for_level(IsolationLevel::RepeatableRead).unwrap();
        assert!(cs.at_least_as_strict_as(&rc));
        assert!(rr.at_least_as_strict_as(&cs));
        assert!(!rc.at_least_as_strict_as(&cs));
        assert!(!cs.at_least_as_strict_as(&rr));
    }

    #[test]
    fn descriptions_mention_the_level_and_durations() {
        let p = LockProfile::for_level(IsolationLevel::RepeatableRead).unwrap();
        let text = p.describe();
        assert!(text.contains("REPEATABLE READ"));
        assert!(text.contains("long duration"));
        assert!(text.contains("short duration"));
        let rc = LockProfile::for_level(IsolationLevel::ReadCommitted).unwrap();
        assert!(rc.describe().contains("items and predicates"));
    }

    #[test]
    fn lock_requirement_accessors() {
        assert!(!LockRequirement::NotRequired.is_required());
        assert_eq!(LockRequirement::NotRequired.duration(), None);
        assert_eq!(
            LockRequirement::WellFormed(LockDuration::Long).duration(),
            Some(LockDuration::Long)
        );
        assert!(LockDuration::Short < LockDuration::Cursor);
        assert!(LockDuration::Cursor < LockDuration::Long);
    }
}
