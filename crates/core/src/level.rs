//! The isolation level taxonomy.
//!
//! The paper works with three families of definitions:
//!
//! 1. the **ANSI SQL-92 levels** of Table 1, defined solely by which of the
//!    three original phenomena (P1/P2/P3 — or, in the strict reading,
//!    A1/A2/A3) they forbid ([`AnsiLevel`]);
//! 2. the **locking levels / degrees of consistency** of Table 2 and the
//!    equivalent corrected phenomenological levels of Table 3;
//! 3. the **extended levels** of Table 4 and Figure 2, which add Cursor
//!    Stability, Snapshot Isolation, and Oracle Read Consistency.
//!
//! [`IsolationLevel`] enumerates family 2 and 3 (they share rows); the
//! original, phenomena-only ANSI levels live in [`AnsiLevel`] because the
//! paper's whole point is that they are *not* the same thing.

use crate::phenomena::{Interpretation, Phenomenon};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The isolation levels characterised by the paper (Tables 2-4, Figure 2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum IsolationLevel {
    /// \[GLPT\] Degree 0: only well-formed (short) writes; even dirty writes
    /// are possible.
    Degree0,
    /// Locking READ UNCOMMITTED == Degree 1: long write locks, no read
    /// locks.
    ReadUncommitted,
    /// Locking READ COMMITTED == Degree 2: long write locks, short read
    /// locks.
    ReadCommitted,
    /// Cursor Stability (Section 4.1): READ COMMITTED plus a read lock held
    /// on the current row of each cursor.
    CursorStability,
    /// Oracle Read Consistency (Section 4.3): statement-level snapshots
    /// with write locks (first-writer-wins).
    OracleReadConsistency,
    /// Locking REPEATABLE READ: long item read locks, short predicate read
    /// locks.
    RepeatableRead,
    /// Snapshot Isolation (Section 4.2): transaction-level snapshot reads
    /// with First-Committer-Wins writes.
    SnapshotIsolation,
    /// Locking SERIALIZABLE == Degree 3: long read and write locks on items
    /// and predicates (full two-phase locking).
    Serializable,
}

impl IsolationLevel {
    /// All levels, ordered roughly from weakest to strongest (the total
    /// order is only partial — see [`crate::lattice`]).
    pub const ALL: [IsolationLevel; 8] = [
        IsolationLevel::Degree0,
        IsolationLevel::ReadUncommitted,
        IsolationLevel::ReadCommitted,
        IsolationLevel::CursorStability,
        IsolationLevel::OracleReadConsistency,
        IsolationLevel::RepeatableRead,
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::Serializable,
    ];

    /// The rows of Table 4, in the paper's order.
    pub const TABLE4_ROWS: [IsolationLevel; 6] = [
        IsolationLevel::ReadUncommitted,
        IsolationLevel::ReadCommitted,
        IsolationLevel::CursorStability,
        IsolationLevel::RepeatableRead,
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::Serializable,
    ];

    /// The rows of Table 3 (and Table 2, minus Degree 0 / Cursor Stability).
    pub const TABLE3_ROWS: [IsolationLevel; 4] = [
        IsolationLevel::ReadUncommitted,
        IsolationLevel::ReadCommitted,
        IsolationLevel::RepeatableRead,
        IsolationLevel::Serializable,
    ];

    /// The canonical display name.
    pub fn name(&self) -> &'static str {
        match self {
            IsolationLevel::Degree0 => "Degree 0",
            IsolationLevel::ReadUncommitted => "READ UNCOMMITTED",
            IsolationLevel::ReadCommitted => "READ COMMITTED",
            IsolationLevel::CursorStability => "Cursor Stability",
            IsolationLevel::OracleReadConsistency => "Oracle Read Consistency",
            IsolationLevel::RepeatableRead => "REPEATABLE READ",
            IsolationLevel::SnapshotIsolation => "Snapshot Isolation",
            IsolationLevel::Serializable => "SERIALIZABLE",
        }
    }

    /// Alternative names used in the paper and in industry (degrees of
    /// consistency, Date's terminology, product names).
    pub fn aliases(&self) -> &'static [&'static str] {
        match self {
            IsolationLevel::Degree0 => &["Degree 0 consistency"],
            IsolationLevel::ReadUncommitted => &["Degree 1", "Locking READ UNCOMMITTED"],
            IsolationLevel::ReadCommitted => &["Degree 2", "Locking READ COMMITTED"],
            IsolationLevel::CursorStability => &["Date's Cursor Stability", "IBM CS"],
            IsolationLevel::OracleReadConsistency => {
                &["Oracle Consistent Read", "statement-level snapshot"]
            }
            IsolationLevel::RepeatableRead => &["Locking REPEATABLE READ"],
            IsolationLevel::SnapshotIsolation => &["SI", "InterBase 4", "first-committer-wins"],
            IsolationLevel::Serializable => &[
                "Degree 3",
                "Locking SERIALIZABLE",
                "Date / DB2 Repeatable Read",
            ],
        }
    }

    /// The \[GLPT\] degree of consistency this level corresponds to, if any.
    pub fn degree(&self) -> Option<u8> {
        match self {
            IsolationLevel::Degree0 => Some(0),
            IsolationLevel::ReadUncommitted => Some(1),
            IsolationLevel::ReadCommitted => Some(2),
            IsolationLevel::Serializable => Some(3),
            _ => None,
        }
    }

    /// True for the levels implemented by a locking scheduler (Table 2).
    pub fn is_lock_based(&self) -> bool {
        !matches!(
            self,
            IsolationLevel::SnapshotIsolation | IsolationLevel::OracleReadConsistency
        )
    }

    /// True for the multi-version levels of Section 4.2 / 4.3.
    pub fn is_multiversion(&self) -> bool {
        !self.is_lock_based()
    }

    /// Parse a level from its name or a common alias (case-insensitive).
    pub fn from_name(name: &str) -> Option<IsolationLevel> {
        let wanted = name.trim().to_ascii_lowercase();
        IsolationLevel::ALL.into_iter().find(|level| {
            level.name().to_ascii_lowercase() == wanted
                || level
                    .aliases()
                    .iter()
                    .any(|a| a.to_ascii_lowercase() == wanted)
        })
    }
}

impl fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The original ANSI SQL-92 isolation levels of Table 1, defined *only* by
/// the phenomena they forbid.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum AnsiLevel {
    /// ANSI READ UNCOMMITTED: P1, P2, P3 all possible.
    ReadUncommitted,
    /// ANSI READ COMMITTED: P1 not possible.
    ReadCommitted,
    /// ANSI REPEATABLE READ: P1, P2 not possible.
    RepeatableRead,
    /// ANOMALY SERIALIZABLE: P1, P2, P3 not possible (which, the paper
    /// shows, still does not imply true serializability).
    AnomalySerializable,
}

impl AnsiLevel {
    /// All ANSI levels, weakest first (the rows of Table 1).
    pub const ALL: [AnsiLevel; 4] = [
        AnsiLevel::ReadUncommitted,
        AnsiLevel::ReadCommitted,
        AnsiLevel::RepeatableRead,
        AnsiLevel::AnomalySerializable,
    ];

    /// Display name as printed in Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            AnsiLevel::ReadUncommitted => "ANSI READ UNCOMMITTED",
            AnsiLevel::ReadCommitted => "ANSI READ COMMITTED",
            AnsiLevel::RepeatableRead => "ANSI REPEATABLE READ",
            AnsiLevel::AnomalySerializable => "ANOMALY SERIALIZABLE",
        }
    }

    /// The phenomena this level forbids, under the chosen interpretation of
    /// the ANSI definitions (broad → P1/P2/P3, strict → A1/A2/A3).
    pub fn forbidden(&self, interpretation: Interpretation) -> Vec<Phenomenon> {
        let (p1, p2, p3) = match interpretation {
            Interpretation::Broad => (Phenomenon::P1, Phenomenon::P2, Phenomenon::P3),
            Interpretation::Strict => (Phenomenon::A1, Phenomenon::A2, Phenomenon::A3),
        };
        match self {
            AnsiLevel::ReadUncommitted => vec![],
            AnsiLevel::ReadCommitted => vec![p1],
            AnsiLevel::RepeatableRead => vec![p1, p2],
            AnsiLevel::AnomalySerializable => vec![p1, p2, p3],
        }
    }

    /// True if a history obeys this level under the chosen interpretation —
    /// i.e. exhibits none of the forbidden phenomena.
    pub fn permits(
        &self,
        history: &critique_history::History,
        interpretation: Interpretation,
    ) -> bool {
        self.forbidden(interpretation)
            .into_iter()
            .all(|p| !crate::detect::exhibits(history, p))
    }
}

impl fmt::Display for AnsiLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critique_history::canonical;

    #[test]
    fn all_levels_have_distinct_names() {
        let mut names = std::collections::HashSet::new();
        for level in IsolationLevel::ALL {
            assert!(names.insert(level.name()));
            assert!(!level.aliases().is_empty() || level == IsolationLevel::Degree0);
        }
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn degrees_match_glpt() {
        assert_eq!(IsolationLevel::Degree0.degree(), Some(0));
        assert_eq!(IsolationLevel::ReadUncommitted.degree(), Some(1));
        assert_eq!(IsolationLevel::ReadCommitted.degree(), Some(2));
        assert_eq!(IsolationLevel::Serializable.degree(), Some(3));
        assert_eq!(IsolationLevel::RepeatableRead.degree(), None);
        assert_eq!(IsolationLevel::SnapshotIsolation.degree(), None);
    }

    #[test]
    fn lock_based_vs_multiversion() {
        assert!(IsolationLevel::Serializable.is_lock_based());
        assert!(IsolationLevel::CursorStability.is_lock_based());
        assert!(IsolationLevel::SnapshotIsolation.is_multiversion());
        assert!(IsolationLevel::OracleReadConsistency.is_multiversion());
    }

    #[test]
    fn from_name_accepts_names_and_aliases() {
        assert_eq!(
            IsolationLevel::from_name("read committed"),
            Some(IsolationLevel::ReadCommitted)
        );
        assert_eq!(
            IsolationLevel::from_name("Degree 3"),
            Some(IsolationLevel::Serializable)
        );
        assert_eq!(
            IsolationLevel::from_name("SI"),
            Some(IsolationLevel::SnapshotIsolation)
        );
        assert_eq!(IsolationLevel::from_name("nonsense"), None);
    }

    #[test]
    fn ansi_levels_forbid_cumulative_phenomena() {
        assert!(AnsiLevel::ReadUncommitted
            .forbidden(Interpretation::Broad)
            .is_empty());
        assert_eq!(
            AnsiLevel::AnomalySerializable.forbidden(Interpretation::Broad),
            vec![Phenomenon::P1, Phenomenon::P2, Phenomenon::P3]
        );
        assert_eq!(
            AnsiLevel::RepeatableRead.forbidden(Interpretation::Strict),
            vec![Phenomenon::A1, Phenomenon::A2]
        );
    }

    #[test]
    fn h1_is_permitted_by_anomaly_serializable_under_strict_interpretation() {
        // The paper's central example: H1 violates no strict anomaly, so the
        // strict reading of ANSI SERIALIZABLE admits a non-serializable
        // history.
        let h1 = canonical::h1();
        assert!(AnsiLevel::AnomalySerializable.permits(&h1, Interpretation::Strict));
        // The broad interpretation correctly rejects it.
        assert!(!AnsiLevel::AnomalySerializable.permits(&h1, Interpretation::Broad));
        assert!(!AnsiLevel::ReadCommitted.permits(&h1, Interpretation::Broad));
    }

    #[test]
    fn h2_discriminates_a2_from_p2() {
        let h2 = canonical::h2();
        assert!(AnsiLevel::RepeatableRead.permits(&h2, Interpretation::Strict));
        assert!(!AnsiLevel::RepeatableRead.permits(&h2, Interpretation::Broad));
    }

    #[test]
    fn h3_discriminates_a3_from_p3() {
        let h3 = canonical::h3();
        assert!(AnsiLevel::AnomalySerializable.permits(&h3, Interpretation::Strict));
        assert!(!AnsiLevel::AnomalySerializable.permits(&h3, Interpretation::Broad));
    }

    #[test]
    fn display_names() {
        assert_eq!(
            IsolationLevel::SnapshotIsolation.to_string(),
            "Snapshot Isolation"
        );
        assert_eq!(
            AnsiLevel::AnomalySerializable.to_string(),
            "ANOMALY SERIALIZABLE"
        );
    }
}
