//! A5A (Read Skew) and A5B (Write Skew) — the data-item constraint
//! violation anomalies of Section 4.2.

use super::{termination_bound, Occurrence};
use crate::phenomena::Phenomenon;
use critique_history::{History, TxnOutcome};

/// A5A Read Skew: `r1[x]...w2[x]...w2[y]...c2...r1[y]...(c1 or a1)` —
/// T1 reads `x`, then T2 updates both `x` and `y` and commits, then T1
/// reads `y`: T1 has observed a mix of old `x` and new `y`, potentially
/// violating a constraint between them.
pub fn read_skews(history: &History) -> Vec<Occurrence> {
    let ops = history.ops();
    let mut found = Vec::new();
    for (i, read_x) in ops.iter().enumerate() {
        if !read_x.is_read() {
            continue;
        }
        let Some(x) = read_x.item() else { continue };
        let t1 = read_x.txn;
        let t1_bound = termination_bound(history, t1);

        for (j, write_x) in ops.iter().enumerate().skip(i + 1) {
            if !(write_x.txn != t1 && write_x.is_write() && write_x.item() == Some(x)) {
                continue;
            }
            let t2 = write_x.txn;
            if history.outcome(t2) != TxnOutcome::Committed {
                continue;
            }
            let Some(t2_commit) = history.termination_index(t2) else {
                continue;
            };
            if t2_commit < j {
                continue;
            }
            // T2 also writes some other item y before committing…
            for (k, write_y) in ops.iter().enumerate() {
                if !(write_y.txn == t2 && write_y.is_write() && k < t2_commit) {
                    continue;
                }
                let Some(y) = write_y.item() else { continue };
                if y == x {
                    continue;
                }
                // …and T1 reads y after T2's commit but before T1 terminates.
                for (l, read_y) in ops.iter().enumerate().skip(t2_commit + 1) {
                    if l >= t1_bound {
                        break;
                    }
                    if read_y.txn == t1 && read_y.is_read() && read_y.item() == Some(y) {
                        found.push(Occurrence {
                            phenomenon: Phenomenon::A5A,
                            txns: vec![t1, t2],
                            indices: vec![i, j, k, t2_commit, l],
                            target: format!("{x}, {y}"),
                        });
                        break;
                    }
                }
            }
        }
    }
    found.sort_by(|a, b| a.indices.cmp(&b.indices));
    found.dedup();
    found
}

/// A5B Write Skew: `r1[x]...r2[y]...w1[y]...w2[x]...(c1 and c2 occur)` —
/// two transactions read an overlapping pair of items and then write past
/// each other, so a constraint spanning `x` and `y` that each preserves in
/// isolation can be violated jointly (history H5).
pub fn write_skews(history: &History) -> Vec<Occurrence> {
    let ops = history.ops();
    let mut found = Vec::new();
    for (i, read_x) in ops.iter().enumerate() {
        if !read_x.is_read() {
            continue;
        }
        let Some(x) = read_x.item() else { continue };
        let t1 = read_x.txn;
        if history.outcome(t1) != TxnOutcome::Committed {
            continue;
        }
        for (j, read_y) in ops.iter().enumerate().skip(i + 1) {
            if !(read_y.txn != t1 && read_y.is_read()) {
                continue;
            }
            let t2 = read_y.txn;
            if history.outcome(t2) != TxnOutcome::Committed {
                continue;
            }
            let Some(y) = read_y.item() else { continue };
            if y == x {
                continue;
            }
            // w1[y] after r2[y], then w2[x] after that.
            for (k, write_y) in ops.iter().enumerate().skip(j + 1) {
                if !(write_y.txn == t1 && write_y.is_write() && write_y.item() == Some(y)) {
                    continue;
                }
                for (l, write_x) in ops.iter().enumerate().skip(k + 1) {
                    if write_x.txn == t2 && write_x.is_write() && write_x.item() == Some(x) {
                        found.push(Occurrence {
                            phenomenon: Phenomenon::A5B,
                            txns: vec![t1, t2],
                            indices: vec![i, j, k, l],
                            target: format!("{x}, {y}"),
                        });
                    }
                }
            }
        }
    }
    found.sort_by(|a, b| a.indices.cmp(&b.indices));
    found.dedup();
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use critique_history::{canonical, History};

    #[test]
    fn canonical_read_skew_detected() {
        let h = canonical::read_skew();
        let occ = read_skews(&h);
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].txns.len(), 2);
        assert!(occ[0].target.contains('x') && occ[0].target.contains('y'));
    }

    #[test]
    fn read_skew_not_detected_when_t1_reads_y_before_t2_commits() {
        let h = History::parse("r1[x=50] w2[x=10] w2[y=90] r1[y=50] c2 c1").unwrap();
        assert!(read_skews(&h).is_empty());
    }

    #[test]
    fn read_skew_not_detected_when_t2_aborts() {
        let h = History::parse("r1[x=50] w2[x=10] w2[y=90] a2 r1[y=50] c1").unwrap();
        assert!(read_skews(&h).is_empty());
    }

    #[test]
    fn read_skew_requires_two_distinct_items() {
        let h = History::parse("r1[x] w2[x] c2 r1[x] c1").unwrap();
        assert!(read_skews(&h).is_empty());
    }

    #[test]
    fn h2_is_a_read_skew() {
        assert!(!read_skews(&canonical::h2()).is_empty());
    }

    #[test]
    fn canonical_write_skew_and_h5_detected() {
        assert!(!write_skews(&canonical::write_skew()).is_empty());
        assert!(!write_skews(&canonical::h5()).is_empty());
    }

    #[test]
    fn write_skew_requires_both_commits() {
        let h = History::parse("r1[x] r2[y] w1[y] w2[x] c1 a2").unwrap();
        assert!(write_skews(&h).is_empty());
        let h = History::parse("r1[x] r2[y] w1[y] w2[x] a1 c2").unwrap();
        assert!(write_skews(&h).is_empty());
    }

    #[test]
    fn write_skew_requires_crossed_writes() {
        // Each transaction writes the item it itself read: plain update, no skew.
        let h = History::parse("r1[x] r2[y] w1[x] w2[y] c1 c2").unwrap();
        assert!(write_skews(&h).is_empty());
    }

    #[test]
    fn write_skew_requires_distinct_items() {
        let h = History::parse("r1[x] r2[x] w1[x] w2[x] c1 c2").unwrap();
        assert!(write_skews(&h).is_empty());
    }

    #[test]
    fn sequential_updates_are_not_write_skew() {
        let h = History::parse("r1[x] w1[y] c1 r2[y] w2[x] c2").unwrap();
        assert!(write_skews(&h).is_empty());
    }
}
