//! P2 (Fuzzy / Non-Repeatable Read, broad) and A2 (strict).

use super::{termination_bound, Occurrence};
use crate::phenomena::Phenomenon;
use critique_history::{History, TxnOutcome};

/// P2 Fuzzy Read (broad): `r1[x]...w2[x]...(c1 or a1)` — another
/// transaction writes a data item that an uncommitted transaction has read.
pub fn fuzzy_reads_broad(history: &History) -> Vec<Occurrence> {
    let ops = history.ops();
    let mut found = Vec::new();
    for (i, first) in ops.iter().enumerate() {
        if !first.is_read() {
            continue;
        }
        let Some(item) = first.item() else { continue };
        let bound = termination_bound(history, first.txn);
        for (j, second) in ops.iter().enumerate().skip(i + 1) {
            if j >= bound {
                break;
            }
            if second.txn != first.txn && second.is_write() && second.item() == Some(item) {
                found.push(Occurrence {
                    phenomenon: Phenomenon::P2,
                    txns: vec![first.txn, second.txn],
                    indices: vec![i, j],
                    target: item.name().to_string(),
                });
            }
        }
    }
    found
}

/// A2 Fuzzy Read (strict): `r1[x]...w2[x]...c2...r1[x]...c1` — T1 rereads
/// the item after T2's committed modification, and T1 itself commits.
pub fn fuzzy_reads_strict(history: &History) -> Vec<Occurrence> {
    let ops = history.ops();
    let mut found = Vec::new();
    for (i, first_read) in ops.iter().enumerate() {
        if !first_read.is_read() {
            continue;
        }
        let Some(item) = first_read.item() else {
            continue;
        };
        let reader = first_read.txn;
        if history.outcome(reader) != TxnOutcome::Committed {
            continue;
        }
        for (j, write) in ops.iter().enumerate().skip(i + 1) {
            if !(write.txn != reader && write.is_write() && write.item() == Some(item)) {
                continue;
            }
            let writer = write.txn;
            let Some(commit_idx) = history.termination_index(writer) else {
                continue;
            };
            if history.outcome(writer) != TxnOutcome::Committed || commit_idx < j {
                continue;
            }
            // Look for a re-read by the same reader after the writer's commit.
            for (l, reread) in ops.iter().enumerate().skip(commit_idx + 1) {
                if reread.txn == reader && reread.is_read() && reread.item() == Some(item) {
                    found.push(Occurrence {
                        phenomenon: Phenomenon::A2,
                        txns: vec![reader, writer],
                        indices: vec![i, j, commit_idx, l],
                        target: item.name().to_string(),
                    });
                    break;
                }
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use critique_history::History;

    #[test]
    fn p2_detected_when_item_overwritten_under_reader() {
        let h = History::parse("r1[x] w2[x] c2 c1").unwrap();
        let occ = fuzzy_reads_broad(&h);
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].target, "x");
    }

    #[test]
    fn p2_not_detected_after_reader_commits() {
        let h = History::parse("r1[x] c1 w2[x] c2").unwrap();
        assert!(fuzzy_reads_broad(&h).is_empty());
    }

    #[test]
    fn p2_counts_cursor_reads() {
        let h = History::parse("rc1[x] w2[x] c2 c1").unwrap();
        assert_eq!(fuzzy_reads_broad(&h).len(), 1);
    }

    #[test]
    fn a2_requires_reread_after_committed_write() {
        let full = History::parse("r1[x=50] w2[x=10] c2 r1[x=10] c1").unwrap();
        let occ = fuzzy_reads_strict(&full);
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].indices.len(), 4);

        // No second read: P2 but not A2.
        let no_reread = History::parse("r1[x=50] w2[x=10] c2 r1[y=10] c1").unwrap();
        assert!(fuzzy_reads_strict(&no_reread).is_empty());
        assert!(!fuzzy_reads_broad(&no_reread).is_empty());

        // Reread happens before the writer commits: not A2.
        let early_reread = History::parse("r1[x=50] w2[x=10] r1[x=10] c2 c1").unwrap();
        assert!(fuzzy_reads_strict(&early_reread).is_empty());

        // Writer aborts: not A2.
        let writer_aborts = History::parse("r1[x=50] w2[x=10] a2 r1[x=50] c1").unwrap();
        assert!(fuzzy_reads_strict(&writer_aborts).is_empty());

        // Reader aborts: not A2.
        let reader_aborts = History::parse("r1[x=50] w2[x=10] c2 r1[x=10] a1").unwrap();
        assert!(fuzzy_reads_strict(&reader_aborts).is_empty());
    }

    #[test]
    fn own_rewrites_are_not_fuzzy() {
        let h = History::parse("r1[x] w1[x] r1[x] c1").unwrap();
        assert!(fuzzy_reads_broad(&h).is_empty());
        assert!(fuzzy_reads_strict(&h).is_empty());
    }

    #[test]
    fn h2_triggers_p2_at_the_overwrite_of_x() {
        let h2 = critique_history::canonical::h2();
        let occ = fuzzy_reads_broad(&h2);
        assert!(occ.iter().any(|o| o.target == "x"));
    }
}
