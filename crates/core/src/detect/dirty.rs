//! P0 (Dirty Write), P1 (Dirty Read, broad), and A1 (Dirty Read, strict).

use super::{termination_bound, Occurrence};
use crate::phenomena::Phenomenon;
use critique_history::{History, TxnOutcome};

/// P0 Dirty Write: `w1[x]...w2[x]...(c1 or a1)` — a second transaction
/// writes a data item after an uncommitted transaction wrote it.
pub fn dirty_writes(history: &History) -> Vec<Occurrence> {
    let ops = history.ops();
    let mut found = Vec::new();
    for (i, first) in ops.iter().enumerate() {
        if !first.is_write() {
            continue;
        }
        let Some(item) = first.item() else { continue };
        let bound = termination_bound(history, first.txn);
        for (j, second) in ops.iter().enumerate().skip(i + 1) {
            if j >= bound {
                break;
            }
            if second.txn != first.txn && second.is_write() && second.item() == Some(item) {
                found.push(Occurrence {
                    phenomenon: Phenomenon::P0,
                    txns: vec![first.txn, second.txn],
                    indices: vec![i, j],
                    target: item.name().to_string(),
                });
            }
        }
    }
    found
}

/// P1 Dirty Read (broad): `w1[x]...r2[x]...(c1 or a1)` — a transaction
/// reads a data item written by another transaction that has not yet
/// committed or aborted.
pub fn dirty_reads_broad(history: &History) -> Vec<Occurrence> {
    let ops = history.ops();
    let mut found = Vec::new();
    for (i, first) in ops.iter().enumerate() {
        if !first.is_write() {
            continue;
        }
        let Some(item) = first.item() else { continue };
        let bound = termination_bound(history, first.txn);
        for (j, second) in ops.iter().enumerate().skip(i + 1) {
            if j >= bound {
                break;
            }
            if second.txn != first.txn && second.is_read() && second.item() == Some(item) {
                found.push(Occurrence {
                    phenomenon: Phenomenon::P1,
                    txns: vec![first.txn, second.txn],
                    indices: vec![i, j],
                    target: item.name().to_string(),
                });
            }
        }
    }
    found
}

/// A1 Dirty Read (strict): `w1[x]...r2[x]...(a1 and c2 in either order)` —
/// the writer actually aborts and the reader actually commits, so the
/// reader has observed data that never existed.
pub fn dirty_reads_strict(history: &History) -> Vec<Occurrence> {
    dirty_reads_broad(history)
        .into_iter()
        .filter(|occ| {
            let writer = occ.txns[0];
            let reader = occ.txns[1];
            history.outcome(writer) == TxnOutcome::Aborted
                && history.outcome(reader) == TxnOutcome::Committed
        })
        .map(|mut occ| {
            occ.phenomenon = Phenomenon::A1;
            occ
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use critique_history::History;

    #[test]
    fn p0_detected_in_overlapping_writes() {
        let h = History::parse("w1[x] w2[x] c1 c2").unwrap();
        let occ = dirty_writes(&h);
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].indices, vec![0, 1]);
        assert_eq!(occ[0].target, "x");
    }

    #[test]
    fn p0_not_detected_when_first_writer_commits_first() {
        let h = History::parse("w1[x] c1 w2[x] c2").unwrap();
        assert!(dirty_writes(&h).is_empty());
    }

    #[test]
    fn p0_detected_even_without_terminators() {
        // Still-active transactions impose no bound; the overlap happened.
        let h = History::parse("w1[x] w2[x]").unwrap();
        assert_eq!(dirty_writes(&h).len(), 1);
    }

    #[test]
    fn p0_requires_same_item_and_distinct_txns() {
        let h = History::parse("w1[x] w2[y] w1[x] c1 c2").unwrap();
        assert!(dirty_writes(&h).is_empty());
    }

    #[test]
    fn p1_detected_for_read_of_uncommitted_write() {
        let h = History::parse("w1[x] r2[x] c1 c2").unwrap();
        let occ = dirty_reads_broad(&h);
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].txns.len(), 2);
    }

    #[test]
    fn p1_not_detected_once_writer_committed() {
        let h = History::parse("w1[x] c1 r2[x] c2").unwrap();
        assert!(dirty_reads_broad(&h).is_empty());
    }

    #[test]
    fn p1_detected_for_cursor_reads_too() {
        let h = History::parse("w1[x] rc2[x] c1 c2").unwrap();
        assert_eq!(dirty_reads_broad(&h).len(), 1);
    }

    #[test]
    fn a1_requires_writer_abort_and_reader_commit() {
        // Both commit: P1 but not A1.
        let both_commit = History::parse("w1[x] r2[x] c1 c2").unwrap();
        assert!(dirty_reads_strict(&both_commit).is_empty());

        // Writer aborts, reader commits: A1.
        let strict = History::parse("w1[x] r2[x] a1 c2").unwrap();
        let occ = dirty_reads_strict(&strict);
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].phenomenon, Phenomenon::A1);

        // Writer aborts but reader also aborts: not A1 (nothing was exposed).
        let both_abort = History::parse("w1[x] r2[x] a1 a2").unwrap();
        assert!(dirty_reads_strict(&both_abort).is_empty());
    }

    #[test]
    fn own_reads_are_not_dirty() {
        let h = History::parse("w1[x] r1[x] c1").unwrap();
        assert!(dirty_reads_broad(&h).is_empty());
        assert!(dirty_writes(&h).is_empty());
    }
}
