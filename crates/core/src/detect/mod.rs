//! Detectors: find occurrences of each phenomenon / anomaly in a history.
//!
//! Each detector implements the corresponding shorthand formula from the
//! paper literally — e.g. the P1 detector looks for
//! `w1[x] … r2[x] …` occurring before T1 commits or aborts.  Detectors
//! operate on any [`History`]: the canonical hand-written histories from
//! the paper, histories recorded by the `critique-engine` schedulers, and
//! randomly generated histories used in property tests.

use crate::phenomena::Phenomenon;
use critique_history::{History, TxnId};
use serde::{Deserialize, Serialize};
use std::fmt;

mod dirty;
mod fuzzy;
mod lost_update;
mod phantom;
mod skew;

pub use phantom::phantoms_broad_insert_only;

/// One concrete occurrence of a phenomenon within a history.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Occurrence {
    /// Which phenomenon occurred.
    pub phenomenon: Phenomenon,
    /// The transactions involved, in the role order of the paper's formula
    /// (e.g. for P1: `[T1, T2]` where T1 wrote and T2 read).
    pub txns: Vec<TxnId>,
    /// Indices into the history of the operations that witness the pattern.
    pub indices: Vec<usize>,
    /// Human-readable description of the witness (item or predicate names).
    pub target: String,
}

impl fmt::Display for Occurrence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let txns = self
            .txns
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        write!(
            f,
            "{} on {} involving {} at ops {:?}",
            self.phenomenon.code(),
            self.target,
            txns,
            self.indices
        )
    }
}

/// Index of the commit/abort of `txn`, or `usize::MAX` if it is still
/// active at the end of the history.  Phenomena constrain what happens
/// *before* the first transaction terminates; a still-active transaction
/// imposes no bound.
pub(crate) fn termination_bound(history: &History, txn: TxnId) -> usize {
    history.termination_index(txn).unwrap_or(usize::MAX)
}

/// Detect all occurrences of a single phenomenon in a history.
pub fn detect(history: &History, phenomenon: Phenomenon) -> Vec<Occurrence> {
    match phenomenon {
        Phenomenon::P0 => dirty::dirty_writes(history),
        Phenomenon::P1 => dirty::dirty_reads_broad(history),
        Phenomenon::A1 => dirty::dirty_reads_strict(history),
        Phenomenon::P2 => fuzzy::fuzzy_reads_broad(history),
        Phenomenon::A2 => fuzzy::fuzzy_reads_strict(history),
        Phenomenon::P3 => phantom::phantoms_broad(history),
        Phenomenon::A3 => phantom::phantoms_strict(history),
        Phenomenon::P4 => lost_update::lost_updates(history),
        Phenomenon::P4C => lost_update::cursor_lost_updates(history),
        Phenomenon::A5A => skew::read_skews(history),
        Phenomenon::A5B => skew::write_skews(history),
    }
}

/// True if the history exhibits at least one occurrence of the phenomenon.
pub fn exhibits(history: &History, phenomenon: Phenomenon) -> bool {
    !detect(history, phenomenon).is_empty()
}

/// Detect every phenomenon, returning the full list of occurrences.
pub fn detect_all(history: &History) -> Vec<Occurrence> {
    Phenomenon::ALL
        .into_iter()
        .flat_map(|p| detect(history, p))
        .collect()
}

/// The set of distinct phenomena exhibited by a history.
pub fn exhibited_set(history: &History) -> Vec<Phenomenon> {
    Phenomenon::ALL
        .into_iter()
        .filter(|p| exhibits(history, *p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use critique_history::canonical;

    #[test]
    fn h1_exhibits_p1_but_no_strict_anomaly() {
        let h1 = canonical::h1();
        assert!(exhibits(&h1, Phenomenon::P1));
        assert!(!exhibits(&h1, Phenomenon::A1));
        assert!(!exhibits(&h1, Phenomenon::A2));
        assert!(!exhibits(&h1, Phenomenon::A3));
    }

    #[test]
    fn h2_exhibits_p2_but_not_p1_or_a2() {
        let h2 = canonical::h2();
        assert!(exhibits(&h2, Phenomenon::P2));
        assert!(!exhibits(&h2, Phenomenon::P1));
        assert!(!exhibits(&h2, Phenomenon::A2));
        // H2 is in fact the read-skew shape as well.
        assert!(exhibits(&h2, Phenomenon::A5A));
    }

    #[test]
    fn h3_exhibits_p3_but_not_a3() {
        let h3 = canonical::h3();
        assert!(exhibits(&h3, Phenomenon::P3));
        assert!(!exhibits(&h3, Phenomenon::A3));
    }

    #[test]
    fn h4_exhibits_lost_update() {
        let h4 = canonical::h4();
        assert!(exhibits(&h4, Phenomenon::P4));
        assert!(exhibits(&h4, Phenomenon::P2));
        assert!(!exhibits(&h4, Phenomenon::P4C));
    }

    #[test]
    fn h4c_exhibits_cursor_lost_update() {
        let h4c = canonical::h4c();
        assert!(exhibits(&h4c, Phenomenon::P4C));
        assert!(exhibits(&h4c, Phenomenon::P4));
    }

    #[test]
    fn h5_exhibits_write_skew_only() {
        let h5 = canonical::h5();
        assert!(exhibits(&h5, Phenomenon::A5B));
        assert!(!exhibits(&h5, Phenomenon::P0));
        assert!(!exhibits(&h5, Phenomenon::P1));
        assert!(!exhibits(&h5, Phenomenon::A5A));
        assert!(!exhibits(&h5, Phenomenon::P4));
        // In the single-valued reading, H5's rw overlaps are P2 occurrences
        // (the paper: "forbidding P2 also precludes A5B").
        assert!(exhibits(&h5, Phenomenon::P2));
    }

    #[test]
    fn canonical_a_histories_exhibit_their_anomalies() {
        assert!(exhibits(&canonical::dirty_read_strict(), Phenomenon::A1));
        assert!(exhibits(&canonical::fuzzy_read_strict(), Phenomenon::A2));
        assert!(exhibits(&canonical::phantom_strict(), Phenomenon::A3));
        assert!(exhibits(&canonical::read_skew(), Phenomenon::A5A));
        assert!(exhibits(&canonical::write_skew(), Phenomenon::A5B));
        assert!(exhibits(
            &canonical::dirty_write_constraint(),
            Phenomenon::P0
        ));
        assert!(exhibits(&canonical::dirty_write_recovery(), Phenomenon::P0));
    }

    #[test]
    fn strict_anomalies_imply_their_broad_phenomena() {
        for (_, h) in canonical::all_named() {
            for p in Phenomenon::ALL {
                if exhibits(&h, p) {
                    if let Some(broad) = p.broad_form() {
                        assert!(
                            exhibits(&h, broad),
                            "{} exhibits {} but not its broad form {}",
                            h,
                            p.code(),
                            broad.code()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn serial_histories_exhibit_nothing() {
        let h = History::parse("r1[x] w1[x] c1 r2[x] w2[x] c2 r3[x] c3").unwrap();
        assert!(detect_all(&h).is_empty());
        assert!(exhibited_set(&h).is_empty());
    }

    #[test]
    fn occurrence_display_is_informative() {
        let occ = detect(&canonical::h1(), Phenomenon::P1);
        assert!(!occ.is_empty());
        let text = occ[0].to_string();
        assert!(text.contains("P1"));
        assert!(text.contains("T1"));
    }
}
