//! P4 (Lost Update) and P4C (Cursor Lost Update), Section 4.1.

use super::Occurrence;
use crate::phenomena::Phenomenon;
use critique_history::{History, OpKind, TxnOutcome};

fn lost_update_pattern(history: &History, cursor_read_required: bool) -> Vec<Occurrence> {
    let ops = history.ops();
    let mut found = Vec::new();
    for (i, first_read) in ops.iter().enumerate() {
        let read_matches = match &first_read.kind {
            OpKind::CursorRead(_) => true,
            OpKind::Read(_) => !cursor_read_required,
            _ => false,
        };
        if !read_matches {
            continue;
        }
        let Some(item) = first_read.item() else {
            continue;
        };
        let t1 = first_read.txn;
        if history.outcome(t1) != TxnOutcome::Committed {
            continue;
        }
        let t1_commit = history
            .termination_index(t1)
            .expect("committed transaction has a terminator");
        for (j, foreign_write) in ops.iter().enumerate().skip(i + 1) {
            if j >= t1_commit {
                break;
            }
            if foreign_write.txn == t1
                || !foreign_write.is_write()
                || foreign_write.item() != Some(item)
            {
                continue;
            }
            // T1 writes the same item after the foreign write and then
            // commits.  For the cursor variant the rewrite must itself be
            // the positioned write (`wc`, as in H4C): Cursor Stability's
            // lock travels with the cursor, so only updates through the
            // still-positioned cursor are protected — a plain rewrite of a
            // previously fetched row is an ordinary P4, which CS admits.
            for (k, own_write) in ops.iter().enumerate().skip(j + 1) {
                if k >= t1_commit {
                    break;
                }
                let write_matches = if cursor_read_required {
                    matches!(own_write.kind, OpKind::CursorWrite(_))
                } else {
                    own_write.is_write()
                };
                if own_write.txn == t1 && write_matches && own_write.item() == Some(item) {
                    let phenomenon = if cursor_read_required {
                        Phenomenon::P4C
                    } else {
                        Phenomenon::P4
                    };
                    found.push(Occurrence {
                        phenomenon,
                        txns: vec![t1, foreign_write.txn],
                        indices: vec![i, j, k, t1_commit],
                        target: item.name().to_string(),
                    });
                    break;
                }
            }
        }
    }
    found
}

/// P4 Lost Update: `r1[x]...w2[x]...w1[x]...c1` — T1 overwrites, based on a
/// stale read, a value written by T2 in the meantime; T2's update is lost
/// even if T2 committed.
pub fn lost_updates(history: &History) -> Vec<Occurrence> {
    lost_update_pattern(history, false)
}

/// P4C Cursor Lost Update: `rc1[x]...w2[x]...wc1[x]...c1` — the variant of
/// P4 where T1 both read the item through a cursor and rewrote it through
/// the still-positioned cursor (Cursor Stability prevents exactly this
/// case: the cursor lock is held from the fetch to the positioned write).
pub fn cursor_lost_updates(history: &History) -> Vec<Occurrence> {
    lost_update_pattern(history, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use critique_history::History;

    #[test]
    fn h4_is_a_lost_update() {
        let h4 = critique_history::canonical::h4();
        let occ = lost_updates(&h4);
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].target, "x");
        assert!(cursor_lost_updates(&h4).is_empty());
    }

    #[test]
    fn h4c_is_a_cursor_lost_update() {
        let h4c = critique_history::canonical::h4c();
        assert_eq!(cursor_lost_updates(&h4c).len(), 1);
        // Every P4C is also a P4.
        assert_eq!(lost_updates(&h4c).len(), 1);
    }

    #[test]
    fn plain_rewrite_after_cursor_read_is_p4_not_p4c() {
        // The cursor moved on (its lock with it) before the plain rewrite:
        // Cursor Stability admits this, so it must not count as P4C.
        let h = History::parse("rc1[x] w2[x] w1[x] c1 c2").unwrap();
        assert!(cursor_lost_updates(&h).is_empty());
        assert_eq!(lost_updates(&h).len(), 1);
    }

    #[test]
    fn no_lost_update_when_t1_reads_after_t2s_commit() {
        let h = History::parse("r2[x] w2[x] c2 r1[x] w1[x] c1").unwrap();
        assert!(lost_updates(&h).is_empty());
    }

    #[test]
    fn no_lost_update_when_t1_aborts() {
        let h = History::parse("r1[x] w2[x] c2 w1[x] a1").unwrap();
        assert!(lost_updates(&h).is_empty());
    }

    #[test]
    fn no_lost_update_without_t1_rewrite() {
        let h = History::parse("r1[x] w2[x] c2 r1[x] c1").unwrap();
        assert!(lost_updates(&h).is_empty());
    }

    #[test]
    fn lost_update_does_not_require_t2_commit() {
        // The paper's formula constrains only T1's commit.
        let h = History::parse("r1[x] w2[x] w1[x] c1 a2").unwrap();
        assert_eq!(lost_updates(&h).len(), 1);
    }

    #[test]
    fn own_read_then_write_is_not_a_lost_update() {
        let h = History::parse("r1[x] w1[x] c1").unwrap();
        assert!(lost_updates(&h).is_empty());
    }

    #[test]
    fn intervening_write_must_be_on_the_same_item() {
        let h = History::parse("r1[x] w2[y] w1[x] c1 c2").unwrap();
        assert!(lost_updates(&h).is_empty());
    }
}
