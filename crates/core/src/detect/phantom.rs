//! P3 (Phantom, broad) and A3 (Phantom, strict).
//!
//! Note the paper's refinement: ANSI's English statement of P3 prohibits
//! only *inserts* into a previously read predicate, whereas the paper's P3
//! prohibits **any** write (insert, update, or delete) affecting an item
//! satisfying the predicate once the predicate has been read.  The broad
//! detector follows the paper; [`phantoms_broad_insert_only`] implements the
//! narrower ANSI reading for comparison.

use super::{termination_bound, Occurrence};
use crate::phenomena::Phenomenon;
use critique_history::op::PredicateEffect;
use critique_history::{History, OpKind, TxnOutcome};

fn phantom_pattern(history: &History, insert_only: bool) -> Vec<Occurrence> {
    let ops = history.ops();
    let mut found = Vec::new();
    for (i, first) in ops.iter().enumerate() {
        let OpKind::PredicateRead(predicate) = &first.kind else {
            continue;
        };
        let bound = termination_bound(history, first.txn);
        for (j, second) in ops.iter().enumerate().skip(i + 1) {
            if j >= bound {
                break;
            }
            if second.txn == first.txn || !second.is_write() {
                continue;
            }
            let affects = second.in_predicates.iter().any(|m| {
                m.predicate == *predicate && (!insert_only || m.effect == PredicateEffect::Insert)
            });
            if affects {
                found.push(Occurrence {
                    phenomenon: Phenomenon::P3,
                    txns: vec![first.txn, second.txn],
                    indices: vec![i, j],
                    target: predicate.name().to_string(),
                });
            }
        }
    }
    found
}

/// P3 Phantom (broad): `r1[P]...w2[y in P]...(c1 or a1)` — any write
/// affecting the predicate while the reading transaction is still active.
pub fn phantoms_broad(history: &History) -> Vec<Occurrence> {
    phantom_pattern(history, false)
}

/// The strictly-ANSI variant of broad P3 that only counts *inserts* into
/// the predicate (the reading the paper criticises as too narrow).
pub fn phantoms_broad_insert_only(history: &History) -> Vec<Occurrence> {
    phantom_pattern(history, true)
}

/// A3 Phantom (strict): `r1[P]...w2[y in P]...c2...r1[P]...c1` — T1
/// re-evaluates the predicate after T2's committed write and T1 commits.
pub fn phantoms_strict(history: &History) -> Vec<Occurrence> {
    let ops = history.ops();
    let mut found = Vec::new();
    for (i, first) in ops.iter().enumerate() {
        let OpKind::PredicateRead(predicate) = &first.kind else {
            continue;
        };
        let reader = first.txn;
        if history.outcome(reader) != TxnOutcome::Committed {
            continue;
        }
        for (j, write) in ops.iter().enumerate().skip(i + 1) {
            if write.txn == reader || !write.is_write() || !write.affects_predicate(predicate) {
                continue;
            }
            let writer = write.txn;
            let Some(commit_idx) = history.termination_index(writer) else {
                continue;
            };
            if history.outcome(writer) != TxnOutcome::Committed || commit_idx < j {
                continue;
            }
            for (l, reread) in ops.iter().enumerate().skip(commit_idx + 1) {
                if reread.txn == reader {
                    if let OpKind::PredicateRead(p2) = &reread.kind {
                        if p2 == predicate {
                            found.push(Occurrence {
                                phenomenon: Phenomenon::A3,
                                txns: vec![reader, writer],
                                indices: vec![i, j, commit_idx, l],
                                target: predicate.name().to_string(),
                            });
                            break;
                        }
                    }
                }
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use critique_history::History;

    #[test]
    fn p3_detected_for_insert_into_read_predicate() {
        let h = History::parse("r1[P] w2[insert y to P] c2 c1").unwrap();
        assert_eq!(phantoms_broad(&h).len(), 1);
        assert_eq!(phantoms_broad_insert_only(&h).len(), 1);
    }

    #[test]
    fn p3_detected_for_update_in_predicate_but_not_by_insert_only_variant() {
        let h = History::parse("r1[P] w2[y in P] c2 c1").unwrap();
        assert_eq!(phantoms_broad(&h).len(), 1);
        assert!(phantoms_broad_insert_only(&h).is_empty());
    }

    #[test]
    fn p3_not_detected_after_reader_terminates() {
        let h = History::parse("r1[P] c1 w2[insert y to P] c2").unwrap();
        assert!(phantoms_broad(&h).is_empty());
    }

    #[test]
    fn p3_requires_matching_predicate() {
        let h = History::parse("r1[P] w2[insert y to Q] c2 c1").unwrap();
        assert!(phantoms_broad(&h).is_empty());
    }

    #[test]
    fn a3_requires_predicate_reread_after_commit() {
        let strict = History::parse("r1[P] w2[insert y to P] c2 r1[P] c1").unwrap();
        let occ = phantoms_strict(&strict);
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].phenomenon, Phenomenon::A3);

        // H3: no reread of the predicate, so A3 does not apply.
        let h3 = critique_history::canonical::h3();
        assert!(phantoms_strict(&h3).is_empty());
        assert!(!phantoms_broad(&h3).is_empty());

        // Reread before the writer commits: not A3.
        let early = History::parse("r1[P] w2[insert y to P] r1[P] c2 c1").unwrap();
        assert!(phantoms_strict(&early).is_empty());

        // Writer aborts: not A3.
        let aborted = History::parse("r1[P] w2[insert y to P] a2 r1[P] c1").unwrap();
        assert!(phantoms_strict(&aborted).is_empty());
    }

    #[test]
    fn own_inserts_do_not_create_phantoms() {
        let h = History::parse("r1[P] w1[insert y to P] r1[P] c1").unwrap();
        assert!(phantoms_broad(&h).is_empty());
        assert!(phantoms_strict(&h).is_empty());
    }
}
