//! The paper's characterisation tables (Tables 1, 3, and 4) as data, plus a
//! renderer.
//!
//! The cells here are the *specification* — what the paper asserts.  The
//! `critique-harness` crate regenerates the same matrices by running anomaly
//! scenarios against the `critique-engine` schedulers and compares the two.

use crate::level::{AnsiLevel, IsolationLevel};
use crate::phenomena::{Phenomenon, Possibility};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A characterisation matrix: isolation levels × phenomena → possibility.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CharacterizationTable {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub columns: Vec<Phenomenon>,
    /// Rows: level label plus one possibility per column.
    pub rows: Vec<(String, Vec<Possibility>)>,
}

impl CharacterizationTable {
    /// Look up a cell by row label and phenomenon.
    pub fn cell(&self, row_label: &str, column: Phenomenon) -> Option<Possibility> {
        let col = self.columns.iter().position(|c| *c == column)?;
        self.rows
            .iter()
            .find(|(label, _)| label == row_label)
            .and_then(|(_, cells)| cells.get(col).copied())
    }

    /// Render as a GitHub-flavoured Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str("| Isolation Level |");
        for c in &self.columns {
            out.push_str(&format!(" {} {} |", c.code(), c.name()));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.columns {
            out.push_str("---|");
        }
        out.push('\n');
        for (label, cells) in &self.rows {
            out.push_str(&format!("| {label} |"));
            for cell in cells {
                out.push_str(&format!(" {} |", cell.label()));
            }
            out.push('\n');
        }
        out
    }

    /// Render as fixed-width plain text.
    pub fn to_text(&self) -> String {
        let mut widths = vec![self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .max()
            .unwrap_or(15)
            .max("Isolation Level".len())];
        for (i, c) in self.columns.iter().enumerate() {
            let header = format!("{} {}", c.code(), c.name());
            let max_cell = self
                .rows
                .iter()
                .map(|(_, cells)| cells[i].label().len())
                .max()
                .unwrap_or(8);
            widths.push(header.len().max(max_cell));
        }
        let mut out = format!("{}\n", self.title);
        out.push_str(&format!("{:<w$}", "Isolation Level", w = widths[0] + 2));
        for (i, c) in self.columns.iter().enumerate() {
            let header = format!("{} {}", c.code(), c.name());
            out.push_str(&format!("{:<w$}", header, w = widths[i + 1] + 2));
        }
        out.push('\n');
        for (label, cells) in &self.rows {
            out.push_str(&format!("{:<w$}", label, w = widths[0] + 2));
            for (i, cell) in cells.iter().enumerate() {
                out.push_str(&format!("{:<w$}", cell.label(), w = widths[i + 1] + 2));
            }
            out.push('\n');
        }
        out
    }
}

/// The paper's full characterisation of an isolation level: the possibility
/// of **every** phenomenon and anomaly at that level.  Tables 1, 3 and 4
/// are projections of this map; the Figure 2 hierarchy is computed from it.
pub fn characterization(level: IsolationLevel) -> BTreeMap<Phenomenon, Possibility> {
    use IsolationLevel::*;
    use Phenomenon::*;
    use Possibility::*;

    let assign = |pairs: &[(Phenomenon, Possibility)]| -> BTreeMap<Phenomenon, Possibility> {
        let mut map: BTreeMap<Phenomenon, Possibility> =
            Phenomenon::ALL.into_iter().map(|p| (p, Possible)).collect();
        for (p, v) in pairs {
            map.insert(*p, *v);
        }
        map
    };

    match level {
        // Degree 0 allows even dirty writes — everything is possible.
        Degree0 => assign(&[]),
        // Degree 1: long write locks exclude dirty writes.
        ReadUncommitted => assign(&[(P0, NotPossible)]),
        // Degree 2: adds well-formed short read locks — no dirty reads.
        ReadCommitted => assign(&[(P0, NotPossible), (P1, NotPossible), (A1, NotPossible)]),
        // Cursor Stability: protects the row under the cursor, so cursor
        // lost updates are impossible and general lost updates / fuzzy
        // reads / write skew are only "sometimes possible" (a programmer
        // can parlay cursors into protection for a fixed set of rows).
        CursorStability => assign(&[
            (P0, NotPossible),
            (P1, NotPossible),
            (A1, NotPossible),
            (P4C, NotPossible),
            (P4, SometimesPossible),
            (P2, SometimesPossible),
            (A2, SometimesPossible),
            (A5B, SometimesPossible),
        ]),
        // Oracle Read Consistency: statement-level snapshots with write
        // locks — stronger than READ COMMITTED (no P4C) but admits lost
        // updates, fuzzy reads, phantoms, and read skew (Section 4.3).
        OracleReadConsistency => assign(&[
            (P0, NotPossible),
            (P1, NotPossible),
            (A1, NotPossible),
            (P4C, NotPossible),
        ]),
        // Locking REPEATABLE READ: long item read locks leave only the
        // phantom phenomena possible.
        RepeatableRead => assign(&[
            (P0, NotPossible),
            (P1, NotPossible),
            (A1, NotPossible),
            (P2, NotPossible),
            (A2, NotPossible),
            (P4, NotPossible),
            (P4C, NotPossible),
            (A5A, NotPossible),
            (A5B, NotPossible),
        ]),
        // Snapshot Isolation (Table 4 row + Remark 10): no ANSI anomalies at
        // all, no lost updates or read skew, but write skew is possible and
        // predicate-constraint phantoms (the paper's broad P3) remain
        // "sometimes possible".
        SnapshotIsolation => assign(&[
            (P0, NotPossible),
            (P1, NotPossible),
            (A1, NotPossible),
            (P2, NotPossible),
            (A2, NotPossible),
            (P3, SometimesPossible),
            (A3, NotPossible),
            (P4, NotPossible),
            (P4C, NotPossible),
            (A5A, NotPossible),
            (A5B, Possible),
        ]),
        // Degree 3 / full two-phase locking: nothing is possible.
        Serializable => assign(&Phenomenon::ALL.map(|p| (p, NotPossible))),
    }
}

/// Look up a single cell of the full characterisation.
pub fn possibility(level: IsolationLevel, phenomenon: Phenomenon) -> Possibility {
    characterization(level)[&phenomenon]
}

/// Table 1: the original ANSI SQL isolation levels defined in terms of the
/// three original phenomena.
pub fn table1() -> CharacterizationTable {
    use Possibility::*;
    let rows = AnsiLevel::ALL
        .into_iter()
        .map(|level| {
            let cells = match level {
                AnsiLevel::ReadUncommitted => vec![Possible, Possible, Possible],
                AnsiLevel::ReadCommitted => vec![NotPossible, Possible, Possible],
                AnsiLevel::RepeatableRead => vec![NotPossible, NotPossible, Possible],
                AnsiLevel::AnomalySerializable => vec![NotPossible, NotPossible, NotPossible],
            };
            (level.name().to_string(), cells)
        })
        .collect();
    CharacterizationTable {
        title:
            "Table 1. ANSI SQL Isolation Levels Defined in terms of the Three Original Phenomena"
                .to_string(),
        columns: Phenomenon::ANSI_BROAD.to_vec(),
        rows,
    }
}

/// Table 3: the corrected ANSI isolation levels defined in terms of the
/// four broad phenomena P0-P3.
pub fn table3() -> CharacterizationTable {
    let columns = Phenomenon::TABLE3_COLUMNS.to_vec();
    let rows = IsolationLevel::TABLE3_ROWS
        .into_iter()
        .map(|level| {
            let ch = characterization(level);
            (
                level.name().to_string(),
                columns.iter().map(|p| ch[p]).collect(),
            )
        })
        .collect();
    CharacterizationTable {
        title: "Table 3. ANSI SQL Isolation Levels Defined in terms of the four phenomena"
            .to_string(),
        columns,
        rows,
    }
}

/// Table 4: isolation types characterised by the anomalies they allow.
pub fn table4() -> CharacterizationTable {
    let columns = Phenomenon::TABLE4_COLUMNS.to_vec();
    let rows = IsolationLevel::TABLE4_ROWS
        .into_iter()
        .map(|level| {
            let ch = characterization(level);
            (
                level.name().to_string(),
                columns.iter().map(|p| ch[p]).collect(),
            )
        })
        .collect();
    CharacterizationTable {
        title: "Table 4. Isolation Types Characterized by Possible Anomalies Allowed".to_string(),
        columns,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let t = table1();
        assert_eq!(t.rows.len(), 4);
        assert_eq!(
            t.cell("ANSI READ UNCOMMITTED", Phenomenon::P1),
            Some(Possibility::Possible)
        );
        assert_eq!(
            t.cell("ANSI READ COMMITTED", Phenomenon::P1),
            Some(Possibility::NotPossible)
        );
        assert_eq!(
            t.cell("ANSI REPEATABLE READ", Phenomenon::P3),
            Some(Possibility::Possible)
        );
        assert_eq!(
            t.cell("ANOMALY SERIALIZABLE", Phenomenon::P3),
            Some(Possibility::NotPossible)
        );
    }

    #[test]
    fn table3_forbids_dirty_writes_everywhere() {
        let t = table3();
        for (label, _) in &t.rows {
            assert_eq!(
                t.cell(label, Phenomenon::P0),
                Some(Possibility::NotPossible),
                "{label} must exclude P0"
            );
        }
        assert_eq!(
            t.cell("READ UNCOMMITTED", Phenomenon::P1),
            Some(Possibility::Possible)
        );
        assert_eq!(
            t.cell("REPEATABLE READ", Phenomenon::P2),
            Some(Possibility::NotPossible)
        );
        assert_eq!(
            t.cell("REPEATABLE READ", Phenomenon::P3),
            Some(Possibility::Possible)
        );
        assert_eq!(
            t.cell("SERIALIZABLE", Phenomenon::P3),
            Some(Possibility::NotPossible)
        );
    }

    #[test]
    fn table4_matches_the_papers_matrix() {
        use Phenomenon::*;
        use Possibility::*;
        let t = table4();
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.columns.len(), 8);

        // Spot-check every distinguishing cell called out in the paper.
        assert_eq!(t.cell("READ UNCOMMITTED", P0), Some(NotPossible));
        assert_eq!(t.cell("READ UNCOMMITTED", P1), Some(Possible));
        assert_eq!(t.cell("READ COMMITTED", P4), Some(Possible));
        assert_eq!(t.cell("Cursor Stability", P4C), Some(NotPossible));
        assert_eq!(t.cell("Cursor Stability", P4), Some(SometimesPossible));
        assert_eq!(t.cell("Cursor Stability", A5B), Some(SometimesPossible));
        assert_eq!(t.cell("REPEATABLE READ", P3), Some(Possible));
        assert_eq!(t.cell("REPEATABLE READ", A5B), Some(NotPossible));
        assert_eq!(t.cell("Snapshot Isolation", P3), Some(SometimesPossible));
        assert_eq!(t.cell("Snapshot Isolation", A5A), Some(NotPossible));
        assert_eq!(t.cell("Snapshot Isolation", A5B), Some(Possible));
        assert_eq!(t.cell("SERIALIZABLE", A5B), Some(NotPossible));
    }

    #[test]
    fn snapshot_isolation_precludes_all_strict_ansi_anomalies() {
        // Remark 10.
        for a in Phenomenon::ANSI_STRICT {
            assert_eq!(
                possibility(IsolationLevel::SnapshotIsolation, a),
                Possibility::NotPossible
            );
        }
    }

    #[test]
    fn serializable_allows_nothing_and_degree0_allows_everything() {
        for p in Phenomenon::ALL {
            assert_eq!(
                possibility(IsolationLevel::Serializable, p),
                Possibility::NotPossible
            );
            assert_eq!(
                possibility(IsolationLevel::Degree0, p),
                Possibility::Possible
            );
        }
    }

    #[test]
    fn oracle_read_consistency_matches_section_4_3() {
        use IsolationLevel::OracleReadConsistency as ORC;
        assert_eq!(possibility(ORC, Phenomenon::P4C), Possibility::NotPossible);
        assert_eq!(possibility(ORC, Phenomenon::P4), Possibility::Possible);
        assert_eq!(possibility(ORC, Phenomenon::A5A), Possibility::Possible);
        assert_eq!(possibility(ORC, Phenomenon::P3), Possibility::Possible);
    }

    #[test]
    fn renderers_emit_every_row_and_column() {
        let t = table4();
        let md = t.to_markdown();
        let txt = t.to_text();
        for (label, _) in &t.rows {
            assert!(md.contains(label));
            assert!(txt.contains(label));
        }
        for c in &t.columns {
            assert!(md.contains(c.code()));
            assert!(txt.contains(c.code()));
        }
        assert!(md.contains("Sometimes Possible"));
    }

    #[test]
    fn cell_lookup_handles_missing_entries() {
        let t = table1();
        assert_eq!(t.cell("nonexistent", Phenomenon::P1), None);
        assert_eq!(t.cell("ANSI READ COMMITTED", Phenomenon::A5B), None);
    }
}
