//! # critique-core
//!
//! The primary contribution of *"A Critique of ANSI SQL Isolation Levels"*
//! (Berenson et al., SIGMOD 1995), as an executable Rust library:
//!
//! * the **phenomena and anomalies** — P0 (Dirty Write), P1/A1 (Dirty
//!   Read), P2/A2 (Fuzzy Read), P3/A3 (Phantom), P4 (Lost Update),
//!   P4C (Cursor Lost Update), A5A (Read Skew), A5B (Write Skew) — each
//!   with a *detector* that finds occurrences in any history
//!   ([`phenomena`], [`mod@detect`]);
//! * the **isolation level taxonomy**: ANSI phenomena-based levels
//!   (Table 1), locking levels / degrees of consistency (Table 2),
//!   the corrected phenomenological levels (Table 3), and the extended
//!   characterisation including Cursor Stability, Snapshot Isolation and
//!   Oracle Read Consistency (Table 4) ([`level`], [`tables`],
//!   [`locking`]);
//! * the **isolation hierarchy** — the weaker/stronger/incomparable
//!   relation and the Figure 2 lattice ([`lattice`]).
//!
//! ```
//! use critique_core::prelude::*;
//! use critique_history::canonical;
//!
//! // H1 violates the broad interpretation P1 but none of the strict
//! // anomalies A1, A2, A3 — the paper's argument for broad interpretations.
//! let h1 = canonical::h1();
//! assert!(detect::exhibits(&h1, Phenomenon::P1));
//! assert!(!detect::exhibits(&h1, Phenomenon::A1));
//! assert!(!detect::exhibits(&h1, Phenomenon::A2));
//! assert!(!detect::exhibits(&h1, Phenomenon::A3));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod detect;
pub mod lattice;
pub mod level;
pub mod locking;
pub mod phenomena;
pub mod tables;

pub use crate::detect::{detect, detect_all, exhibits, Occurrence};
pub use crate::lattice::{compare, Comparison, Hierarchy};
pub use crate::level::IsolationLevel;
pub use crate::locking::{LockDuration, LockProfile, LockScope};
pub use crate::phenomena::{Interpretation, Phenomenon, Possibility};

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::detect::{self, detect, detect_all, exhibits, Occurrence};
    pub use crate::lattice::{compare, Comparison, Hierarchy};
    pub use crate::level::IsolationLevel;
    pub use crate::locking::{LockDuration, LockProfile, LockScope};
    pub use crate::phenomena::{Interpretation, Phenomenon, Possibility};
    pub use crate::tables;
}
