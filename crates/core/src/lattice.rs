//! The isolation hierarchy (the paper's Figure 2) and the
//! weaker/stronger/incomparable relation.
//!
//! The paper's definition (Section 2.3): isolation level L1 is *weaker*
//! than L2 (`L1 « L2`) if all non-serializable histories that obey the
//! criteria of L2 also satisfy L1 and there is at least one non-serializable
//! history possible at L1 but not at L2.  At the granularity of the
//! characterisation matrix of [`crate::tables`], this becomes a dominance
//! relation: L1 « L2 iff every phenomenon is at most as possible under L2
//! as under L1, with at least one strictly less possible.

use crate::level::IsolationLevel;
use crate::phenomena::{Phenomenon, Possibility};
use crate::tables::characterization;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The outcome of comparing two isolation levels.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Comparison {
    /// `L1 « L2`: the left level is weaker.
    Weaker,
    /// `L1 » L2`: the left level is stronger.
    Stronger,
    /// `L1 == L2`: the levels admit the same anomalies.
    Equivalent,
    /// `L1 »« L2`: each level allows an anomaly the other forbids
    /// (e.g. REPEATABLE READ vs Snapshot Isolation, Remark 9).
    Incomparable,
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Comparison::Weaker => "« (weaker)",
            Comparison::Stronger => "» (stronger)",
            Comparison::Equivalent => "== (equivalent)",
            Comparison::Incomparable => "»« (incomparable)",
        };
        write!(f, "{s}")
    }
}

fn dominates(
    a: &BTreeMap<Phenomenon, Possibility>,
    b: &BTreeMap<Phenomenon, Possibility>,
) -> (bool, bool) {
    // Returns (a_at_most_b, strictly): every phenomenon at most as possible
    // under `a` as under `b`, and strictly less possible somewhere.
    let mut all_leq = true;
    let mut some_lt = false;
    for p in Phenomenon::ALL {
        let pa = a[&p];
        let pb = b[&p];
        if pa > pb {
            all_leq = false;
        }
        if pa < pb {
            some_lt = true;
        }
    }
    (all_leq, some_lt)
}

/// Compare two isolation levels per the paper's `«` relation.
pub fn compare(left: IsolationLevel, right: IsolationLevel) -> Comparison {
    let cl = characterization(left);
    let cr = characterization(right);
    let (right_dominated, right_strict) = dominates(&cr, &cl); // right forbids ⊇ left
    let (left_dominated, left_strict) = dominates(&cl, &cr);
    match (
        right_dominated && right_strict,
        left_dominated && left_strict,
    ) {
        (true, false) => Comparison::Weaker,   // left « right
        (false, true) => Comparison::Stronger, // left » right
        (false, false) => {
            if right_dominated && left_dominated {
                Comparison::Equivalent
            } else {
                Comparison::Incomparable
            }
        }
        (true, true) => unreachable!("a level cannot be both strictly weaker and stronger"),
    }
}

/// True iff `left « right` (left is strictly weaker).
pub fn weaker(left: IsolationLevel, right: IsolationLevel) -> bool {
    compare(left, right) == Comparison::Weaker
}

/// True iff `left »« right` (the levels are incomparable).
pub fn incomparable(left: IsolationLevel, right: IsolationLevel) -> bool {
    compare(left, right) == Comparison::Incomparable
}

/// An edge of the Figure 2 hierarchy: `lower « upper`, annotated with the
/// phenomena that differentiate them (possible at `lower`, less possible at
/// `upper`).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyEdge {
    /// The weaker level.
    pub lower: IsolationLevel,
    /// The stronger level.
    pub upper: IsolationLevel,
    /// Phenomena whose possibility strictly decreases from `lower` to
    /// `upper` — the edge labels of Figure 2.
    pub differentiating: Vec<Phenomenon>,
}

/// The isolation hierarchy of Figure 2.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Hierarchy {
    levels: Vec<IsolationLevel>,
    edges: Vec<HierarchyEdge>,
}

impl Hierarchy {
    /// Compute the Hasse diagram of the `«` relation over all eight levels:
    /// an edge `lower → upper` is included when `lower « upper` and no
    /// third level sits strictly between them.
    pub fn compute() -> Hierarchy {
        let levels: Vec<IsolationLevel> = IsolationLevel::ALL.to_vec();
        let mut edges = Vec::new();
        for &lower in &levels {
            for &upper in &levels {
                if !weaker(lower, upper) {
                    continue;
                }
                let covered = levels.iter().any(|&mid| {
                    mid != lower && mid != upper && weaker(lower, mid) && weaker(mid, upper)
                });
                if !covered {
                    edges.push(HierarchyEdge {
                        lower,
                        upper,
                        differentiating: differentiating_phenomena(lower, upper),
                    });
                }
            }
        }
        Hierarchy { levels, edges }
    }

    /// The levels in the hierarchy.
    pub fn levels(&self) -> &[IsolationLevel] {
        &self.levels
    }

    /// The Hasse edges, lower level first.
    pub fn edges(&self) -> &[HierarchyEdge] {
        &self.edges
    }

    /// Find the edge between two levels, if it is a covering pair.
    pub fn edge(&self, lower: IsolationLevel, upper: IsolationLevel) -> Option<&HierarchyEdge> {
        self.edges
            .iter()
            .find(|e| e.lower == lower && e.upper == upper)
    }

    /// All incomparable pairs (each listed once).
    pub fn incomparable_pairs(&self) -> Vec<(IsolationLevel, IsolationLevel)> {
        let mut pairs = Vec::new();
        for (i, &a) in self.levels.iter().enumerate() {
            for &b in &self.levels[i + 1..] {
                if incomparable(a, b) {
                    pairs.push((a, b));
                }
            }
        }
        pairs
    }

    /// The hierarchy exactly as the paper draws it in Figure 2.
    ///
    /// The computed Hasse diagram ([`Hierarchy::compute`]) differs in one
    /// place: at the granularity of the Table 4 matrix, Oracle Read
    /// Consistency is dominated by Cursor Stability (every phenomenon is at
    /// most as possible under Cursor Stability), so the computed diagram
    /// routes `READ COMMITTED → Oracle Read Consistency → Cursor
    /// Stability`.  The paper never compares those two levels and draws
    /// both directly above READ COMMITTED; this constructor reproduces the
    /// paper's drawing.  Edge labels are the differentiating phenomena.
    pub fn paper_figure2() -> Hierarchy {
        use IsolationLevel::*;
        let pairs = [
            (Degree0, ReadUncommitted),
            (ReadUncommitted, ReadCommitted),
            (ReadCommitted, CursorStability),
            (ReadCommitted, OracleReadConsistency),
            (CursorStability, RepeatableRead),
            (OracleReadConsistency, SnapshotIsolation),
            (RepeatableRead, Serializable),
            (SnapshotIsolation, Serializable),
        ];
        let edges = pairs
            .into_iter()
            .map(|(lower, upper)| HierarchyEdge {
                lower,
                upper,
                differentiating: differentiating_phenomena(lower, upper),
            })
            .collect();
        Hierarchy {
            levels: IsolationLevel::ALL.to_vec(),
            edges,
        }
    }

    /// Render the hierarchy as Graphviz DOT (Figure 2).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph isolation_hierarchy {\n  rankdir=BT;\n");
        for level in &self.levels {
            out.push_str(&format!("  \"{level}\";\n"));
        }
        for edge in &self.edges {
            let label = edge
                .differentiating
                .iter()
                .map(|p| p.code())
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{}\"];\n",
                edge.lower, edge.upper, label
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Render an ASCII summary: one line per edge plus incomparabilities.
    pub fn to_text(&self) -> String {
        let mut out = String::from("Isolation hierarchy (Figure 2)\n");
        for edge in &self.edges {
            let label = edge
                .differentiating
                .iter()
                .map(|p| p.code())
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "  {}  «  {}   [{}]\n",
                edge.lower, edge.upper, label
            ));
        }
        out.push_str("Incomparable pairs:\n");
        for (a, b) in self.incomparable_pairs() {
            out.push_str(&format!("  {a}  »«  {b}\n"));
        }
        out
    }
}

/// The phenomena whose possibility strictly decreases from `lower` to
/// `upper` — used to label Figure 2 edges.
pub fn differentiating_phenomena(lower: IsolationLevel, upper: IsolationLevel) -> Vec<Phenomenon> {
    let cl = characterization(lower);
    let cu = characterization(upper);
    Phenomenon::ALL
        .into_iter()
        .filter(|p| cu[p] < cl[p])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use IsolationLevel::*;

    #[test]
    fn remark_1_locking_levels_form_a_chain() {
        assert!(weaker(ReadUncommitted, ReadCommitted));
        assert!(weaker(ReadCommitted, RepeatableRead));
        assert!(weaker(RepeatableRead, Serializable));
        // And transitively:
        assert!(weaker(ReadUncommitted, Serializable));
    }

    #[test]
    fn remark_7_cursor_stability_sits_between_rc_and_rr() {
        assert!(weaker(ReadCommitted, CursorStability));
        assert!(weaker(CursorStability, RepeatableRead));
    }

    #[test]
    fn remark_8_read_committed_is_weaker_than_snapshot_isolation() {
        assert!(weaker(ReadCommitted, SnapshotIsolation));
        assert_eq!(
            compare(SnapshotIsolation, ReadCommitted),
            Comparison::Stronger
        );
    }

    #[test]
    fn remark_9_repeatable_read_and_snapshot_isolation_are_incomparable() {
        assert!(incomparable(RepeatableRead, SnapshotIsolation));
        assert!(incomparable(SnapshotIsolation, RepeatableRead));
    }

    #[test]
    fn snapshot_isolation_is_weaker_than_serializable() {
        assert!(weaker(SnapshotIsolation, Serializable));
    }

    #[test]
    fn oracle_read_consistency_sits_above_read_committed_and_below_si() {
        assert!(weaker(ReadCommitted, OracleReadConsistency));
        assert!(weaker(OracleReadConsistency, SnapshotIsolation));
    }

    #[test]
    fn degree0_is_the_bottom_element() {
        for level in IsolationLevel::ALL {
            if level != Degree0 {
                assert!(
                    weaker(Degree0, level),
                    "Degree 0 must be weaker than {level}"
                );
            }
        }
    }

    #[test]
    fn serializable_is_the_top_element() {
        for level in IsolationLevel::ALL {
            if level != Serializable {
                assert!(
                    weaker(level, Serializable),
                    "{level} must be weaker than SERIALIZABLE"
                );
            }
        }
    }

    #[test]
    fn comparison_is_antisymmetric_and_reflexively_equivalent() {
        for a in IsolationLevel::ALL {
            assert_eq!(compare(a, a), Comparison::Equivalent);
            for b in IsolationLevel::ALL {
                match compare(a, b) {
                    Comparison::Weaker => assert_eq!(compare(b, a), Comparison::Stronger),
                    Comparison::Stronger => assert_eq!(compare(b, a), Comparison::Weaker),
                    Comparison::Equivalent => assert_eq!(compare(b, a), Comparison::Equivalent),
                    Comparison::Incomparable => {
                        assert_eq!(compare(b, a), Comparison::Incomparable)
                    }
                }
            }
        }
    }

    #[test]
    fn weaker_is_transitive() {
        for a in IsolationLevel::ALL {
            for b in IsolationLevel::ALL {
                for c in IsolationLevel::ALL {
                    if weaker(a, b) && weaker(b, c) {
                        assert!(weaker(a, c), "{a} « {b} « {c} must imply {a} « {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn computed_hierarchy_has_the_expected_covering_edges() {
        let h = Hierarchy::compute();
        // The chain edges.
        assert!(h.edge(Degree0, ReadUncommitted).is_some());
        assert!(h.edge(ReadUncommitted, ReadCommitted).is_some());
        assert!(h.edge(ReadCommitted, OracleReadConsistency).is_some());
        assert!(h.edge(CursorStability, RepeatableRead).is_some());
        assert!(h.edge(RepeatableRead, Serializable).is_some());
        assert!(h.edge(SnapshotIsolation, Serializable).is_some());
        // Non-covering pairs must not appear as edges.
        assert!(h.edge(ReadUncommitted, Serializable).is_none());
        assert!(h.edge(Degree0, ReadCommitted).is_none());
    }

    #[test]
    fn every_paper_figure2_edge_is_a_weaker_relation() {
        for edge in Hierarchy::paper_figure2().edges() {
            assert!(
                weaker(edge.lower, edge.upper),
                "{} must be weaker than {}",
                edge.lower,
                edge.upper
            );
            assert!(!edge.differentiating.is_empty());
        }
    }

    #[test]
    fn figure2_edge_labels_match_the_paper() {
        let h = Hierarchy::paper_figure2();
        let labels = |lower, upper| {
            h.edge(lower, upper)
                .map(|e| e.differentiating.clone())
                .unwrap_or_default()
        };
        assert_eq!(labels(Degree0, ReadUncommitted), vec![Phenomenon::P0]);
        assert_eq!(
            labels(ReadUncommitted, ReadCommitted),
            vec![Phenomenon::P1, Phenomenon::A1]
        );
        assert!(labels(ReadCommitted, CursorStability).contains(&Phenomenon::P4C));
        assert_eq!(
            labels(RepeatableRead, Serializable),
            vec![Phenomenon::P3, Phenomenon::A3]
        );
        assert_eq!(
            labels(SnapshotIsolation, Serializable),
            vec![Phenomenon::P3, Phenomenon::A5B]
        );
        // Oracle → SI is labelled with the Section 4.3 differences.
        let orc_si = labels(OracleReadConsistency, SnapshotIsolation);
        for expected in [Phenomenon::A3, Phenomenon::A5A, Phenomenon::P4] {
            assert!(orc_si.contains(&expected), "missing {expected:?}");
        }
    }

    #[test]
    fn incomparable_pairs_include_rr_vs_si() {
        let h = Hierarchy::compute();
        let pairs = h.incomparable_pairs();
        assert!(pairs
            .iter()
            .any(|&(a, b)| (a, b) == (RepeatableRead, SnapshotIsolation)
                || (b, a) == (RepeatableRead, SnapshotIsolation)));
    }

    #[test]
    fn renderings_mention_every_level() {
        let h = Hierarchy::compute();
        let dot = h.to_dot();
        let text = h.to_text();
        for level in IsolationLevel::ALL {
            assert!(dot.contains(level.name()));
            assert!(text.contains(level.name()));
        }
        assert!(dot.contains("->"));
        assert!(text.contains("»«"));
    }
}
