//! The phenomena and anomalies catalogued by the paper.
//!
//! The paper distinguishes *phenomena* (broad interpretations, which forbid
//! action subsequences that **might** lead to anomalous behaviour) from
//! *anomalies* (strict interpretations, which require the unfortunate
//! outcome to actually materialise).  Section 3 argues that the broad
//! interpretations are the ones ANSI intended (Remark 4).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Broad (phenomenon) vs strict (anomaly) interpretation (Section 2.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Interpretation {
    /// Broad: prohibits an execution sequence if something anomalous
    /// *might* happen in the future (the `P` definitions).
    Broad,
    /// Strict: prohibits only sequences where the anomaly actually occurs
    /// (the `A` definitions).
    Strict,
}

/// Every phenomenon / anomaly defined in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
#[allow(clippy::upper_case_acronyms)]
pub enum Phenomenon {
    /// P0 Dirty Write: `w1[x]...w2[x]...(c1 or a1)`.
    P0,
    /// P1 Dirty Read (broad): `w1[x]...r2[x]...(c1 or a1)`.
    P1,
    /// A1 Dirty Read (strict): `w1[x]...r2[x]...(a1 and c2 in either order)`.
    A1,
    /// P2 Fuzzy / Non-Repeatable Read (broad): `r1[x]...w2[x]...(c1 or a1)`.
    P2,
    /// A2 Fuzzy Read (strict): `r1[x]...w2[x]...c2...r1[x]...c1`.
    A2,
    /// P3 Phantom (broad): `r1[P]...w2[y in P]...(c1 or a1)`.
    P3,
    /// A3 Phantom (strict): `r1[P]...w2[y in P]...c2...r1[P]...c1`.
    A3,
    /// P4 Lost Update: `r1[x]...w2[x]...w1[x]...c1`.
    P4,
    /// P4C Cursor Lost Update: `rc1[x]...w2[x]...w1[x]...c1`.
    P4C,
    /// A5A Read Skew: `r1[x]...w2[x]...w2[y]...c2...r1[y]...(c1 or a1)`.
    A5A,
    /// A5B Write Skew: `r1[x]...r2[y]...w1[y]...w2[x]...(c1 and c2 occur)`.
    A5B,
}

impl Phenomenon {
    /// All phenomena, in the paper's presentation order.
    pub const ALL: [Phenomenon; 11] = [
        Phenomenon::P0,
        Phenomenon::P1,
        Phenomenon::A1,
        Phenomenon::P2,
        Phenomenon::A2,
        Phenomenon::P3,
        Phenomenon::A3,
        Phenomenon::P4,
        Phenomenon::P4C,
        Phenomenon::A5A,
        Phenomenon::A5B,
    ];

    /// The columns of Table 4, in the paper's order.
    pub const TABLE4_COLUMNS: [Phenomenon; 8] = [
        Phenomenon::P0,
        Phenomenon::P1,
        Phenomenon::P4C,
        Phenomenon::P4,
        Phenomenon::P2,
        Phenomenon::P3,
        Phenomenon::A5A,
        Phenomenon::A5B,
    ];

    /// The three original ANSI phenomena in their broad interpretation
    /// (the columns of Table 1).
    pub const ANSI_BROAD: [Phenomenon; 3] = [Phenomenon::P1, Phenomenon::P2, Phenomenon::P3];

    /// The three original ANSI phenomena in their strict interpretation.
    pub const ANSI_STRICT: [Phenomenon; 3] = [Phenomenon::A1, Phenomenon::A2, Phenomenon::A3];

    /// The columns of Table 3 (the paper's corrected ANSI definition).
    pub const TABLE3_COLUMNS: [Phenomenon; 4] = [
        Phenomenon::P0,
        Phenomenon::P1,
        Phenomenon::P2,
        Phenomenon::P3,
    ];

    /// Short identifier (`"P0"`, `"A5B"`, …).
    pub fn code(&self) -> &'static str {
        match self {
            Phenomenon::P0 => "P0",
            Phenomenon::P1 => "P1",
            Phenomenon::A1 => "A1",
            Phenomenon::P2 => "P2",
            Phenomenon::A2 => "A2",
            Phenomenon::P3 => "P3",
            Phenomenon::A3 => "A3",
            Phenomenon::P4 => "P4",
            Phenomenon::P4C => "P4C",
            Phenomenon::A5A => "A5A",
            Phenomenon::A5B => "A5B",
        }
    }

    /// The paper's English name for the phenomenon.
    pub fn name(&self) -> &'static str {
        match self {
            Phenomenon::P0 => "Dirty Write",
            Phenomenon::P1 | Phenomenon::A1 => "Dirty Read",
            Phenomenon::P2 | Phenomenon::A2 => "Fuzzy Read",
            Phenomenon::P3 | Phenomenon::A3 => "Phantom",
            Phenomenon::P4 => "Lost Update",
            Phenomenon::P4C => "Cursor Lost Update",
            Phenomenon::A5A => "Read Skew",
            Phenomenon::A5B => "Write Skew",
        }
    }

    /// The paper's shorthand definition.
    pub fn definition(&self) -> &'static str {
        match self {
            Phenomenon::P0 => "w1[x]...w2[x]...(c1 or a1)",
            Phenomenon::P1 => "w1[x]...r2[x]...(c1 or a1)",
            Phenomenon::A1 => "w1[x]...r2[x]...(a1 and c2 in either order)",
            Phenomenon::P2 => "r1[x]...w2[x]...(c1 or a1)",
            Phenomenon::A2 => "r1[x]...w2[x]...c2...r1[x]...c1",
            Phenomenon::P3 => "r1[P]...w2[y in P]...(c1 or a1)",
            Phenomenon::A3 => "r1[P]...w2[y in P]...c2...r1[P]...c1",
            Phenomenon::P4 => "r1[x]...w2[x]...w1[x]...c1",
            Phenomenon::P4C => "rc1[x]...w2[x]...w1[x]...c1",
            Phenomenon::A5A => "r1[x]...w2[x]...w2[y]...c2...r1[y]...(c1 or a1)",
            Phenomenon::A5B => "r1[x]...r2[y]...w1[y]...w2[x]...(c1 and c2 occur)",
        }
    }

    /// Whether this is a broad phenomenon or a strict anomaly.
    pub fn interpretation(&self) -> Interpretation {
        match self {
            Phenomenon::P0
            | Phenomenon::P1
            | Phenomenon::P2
            | Phenomenon::P3
            | Phenomenon::P4
            | Phenomenon::P4C => Interpretation::Broad,
            Phenomenon::A1
            | Phenomenon::A2
            | Phenomenon::A3
            | Phenomenon::A5A
            | Phenomenon::A5B => Interpretation::Strict,
        }
    }

    /// The broad phenomenon generalising this one, if it is a strict
    /// anomaly of the A1/A2/A3 family (`A1 ⇒ P1`, etc.).  Whenever the
    /// strict anomaly occurs in a history, the broad phenomenon also occurs.
    pub fn broad_form(&self) -> Option<Phenomenon> {
        match self {
            Phenomenon::A1 => Some(Phenomenon::P1),
            Phenomenon::A2 => Some(Phenomenon::P2),
            Phenomenon::A3 => Some(Phenomenon::P3),
            // A5A and A5B generalise to P2 in single-version histories
            // (Section 4.2: "forbidding P2 also precludes A5B"; A5A has T2
            // write an item previously read by uncommitted T1).
            Phenomenon::A5A | Phenomenon::A5B => Some(Phenomenon::P2),
            // P4C is a special case of P4, which is itself precluded by P2.
            Phenomenon::P4C => Some(Phenomenon::P4),
            Phenomenon::P4 => Some(Phenomenon::P2),
            _ => None,
        }
    }

    /// Parse a code such as `"P0"` or `"a5b"`.
    pub fn from_code(code: &str) -> Option<Phenomenon> {
        let code = code.to_ascii_uppercase();
        Phenomenon::ALL.into_iter().find(|p| p.code() == code)
    }
}

impl fmt::Display for Phenomenon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.code(), self.name())
    }
}

/// Whether a phenomenon can occur at a given isolation level — the cell
/// values of Tables 1, 3, and 4.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum Possibility {
    /// The level excludes the phenomenon entirely.
    NotPossible,
    /// The level excludes some but not all variants of the phenomenon
    /// (Table 4's "Sometimes Possible": e.g. Cursor Stability stops lost
    /// updates on rows protected by a cursor but not in general; Snapshot
    /// Isolation stops ANSI-style phantoms but not predicate-constraint
    /// phantoms).
    SometimesPossible,
    /// The level admits histories exhibiting the phenomenon.
    Possible,
}

impl Possibility {
    /// Render as the paper prints it.
    pub fn label(&self) -> &'static str {
        match self {
            Possibility::NotPossible => "Not Possible",
            Possibility::SometimesPossible => "Sometimes Possible",
            Possibility::Possible => "Possible",
        }
    }

    /// True for `Possible` and `SometimesPossible`.
    pub fn admits_some_history(&self) -> bool {
        !matches!(self, Possibility::NotPossible)
    }
}

impl fmt::Display for Possibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for p in Phenomenon::ALL {
            assert_eq!(Phenomenon::from_code(p.code()), Some(p));
            assert_eq!(Phenomenon::from_code(&p.code().to_lowercase()), Some(p));
        }
        assert_eq!(Phenomenon::from_code("P9"), None);
    }

    #[test]
    fn interpretation_classification() {
        assert_eq!(Phenomenon::P1.interpretation(), Interpretation::Broad);
        assert_eq!(Phenomenon::A1.interpretation(), Interpretation::Strict);
        assert_eq!(Phenomenon::P4C.interpretation(), Interpretation::Broad);
        assert_eq!(Phenomenon::A5B.interpretation(), Interpretation::Strict);
    }

    #[test]
    fn broad_forms() {
        assert_eq!(Phenomenon::A1.broad_form(), Some(Phenomenon::P1));
        assert_eq!(Phenomenon::A2.broad_form(), Some(Phenomenon::P2));
        assert_eq!(Phenomenon::A3.broad_form(), Some(Phenomenon::P3));
        assert_eq!(Phenomenon::P4C.broad_form(), Some(Phenomenon::P4));
        assert_eq!(Phenomenon::P0.broad_form(), None);
        assert_eq!(Phenomenon::P1.broad_form(), None);
    }

    #[test]
    fn names_and_definitions_are_nonempty_and_distinct_codes() {
        let mut codes = std::collections::HashSet::new();
        for p in Phenomenon::ALL {
            assert!(!p.name().is_empty());
            assert!(!p.definition().is_empty());
            assert!(codes.insert(p.code()));
        }
        assert_eq!(codes.len(), 11);
    }

    #[test]
    fn table_column_sets() {
        assert_eq!(Phenomenon::TABLE4_COLUMNS.len(), 8);
        assert_eq!(Phenomenon::TABLE3_COLUMNS.len(), 4);
        assert_eq!(Phenomenon::ANSI_BROAD.len(), 3);
        assert!(Phenomenon::TABLE4_COLUMNS.contains(&Phenomenon::A5B));
        assert!(!Phenomenon::TABLE3_COLUMNS.contains(&Phenomenon::P4));
    }

    #[test]
    fn possibility_ordering_and_labels() {
        assert!(Possibility::NotPossible < Possibility::SometimesPossible);
        assert!(Possibility::SometimesPossible < Possibility::Possible);
        assert_eq!(Possibility::Possible.label(), "Possible");
        assert!(Possibility::SometimesPossible.admits_some_history());
        assert!(!Possibility::NotPossible.admits_some_history());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Phenomenon::P0.to_string(), "P0 (Dirty Write)");
        assert_eq!(Possibility::NotPossible.to_string(), "Not Possible");
    }
}
