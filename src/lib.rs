//! # ansi-isolation-critique
//!
//! A full, executable reproduction of *"A Critique of ANSI SQL Isolation
//! Levels"* (Berenson, Bernstein, Gray, Melton, O'Neil, O'Neil — SIGMOD
//! 1995).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`history`] — transaction histories, the paper's shorthand notation,
//!   dependency graphs, serializability, multi-version histories and the
//!   MV→SV mapping (crate `critique-history`);
//! * [`core`] — the phenomena P0-P3 / A1-A3 / P4 / P4C / A5A / A5B with
//!   detectors, the isolation level taxonomy, locking profiles (Table 2),
//!   the characterisation tables (Tables 1, 3, 4) and the Figure 2
//!   hierarchy (crate `critique-core`);
//! * [`storage`] — the multi-version storage substrate: the
//!   `StorageBackend` trait with two engines behind it, the sharded
//!   version-chain store and an append-only log-structured store (crate
//!   `critique-storage`);
//! * [`lock`] — the lock manager with item/predicate locks and deadlock
//!   detection (crate `critique-lock`);
//! * [`engine`] — the transaction engine with locking, Cursor Stability,
//!   Snapshot Isolation, and Oracle Read Consistency schedulers, plus
//!   commit-time change notification (crate `critique-engine`);
//! * [`workloads`] — anomaly scenarios and the mixed concurrent workload
//!   (crate `critique-workloads`);
//! * [`harness`] — the table/figure reproduction harness (crate
//!   `critique-harness`).
//!
//! ```
//! use ansi_isolation_critique::prelude::*;
//!
//! // Run the paper's lost-update scenario under Snapshot Isolation:
//! // First-Committer-Wins prevents it.
//! let result = AnomalyScenario::LostUpdate.run(IsolationLevel::SnapshotIsolation);
//! assert!(!result.outcome.is_anomaly());
//! ```
//!
//! ## Quickstart: open, write, commit, watch
//!
//! The five-line tour — open a database, subscribe a commit-time
//! watcher, write and commit, and observe only the *committed* images
//! (aborted transactions notify nothing; see the README's watchers
//! section for the full delivery contract):
//!
//! ```
//! use ansi_isolation_critique::prelude::*;
//! use critique_storage::Row;
//!
//! let db = Database::new(IsolationLevel::SnapshotIsolation);
//! let watcher = db.watch_table("accounts");
//!
//! let txn = db.begin();
//! let id = txn.insert("accounts", Row::new().with("balance", 50)).unwrap();
//! txn.commit().unwrap();
//!
//! let event = watcher.try_recv().expect("the commit notifies the watcher");
//! assert_eq!(event.changes.len(), 1);
//! assert_eq!(event.changes[0].row, id);
//! assert_eq!(event.changes[0].kind, ChangeKind::Inserted);
//! assert_eq!(
//!     event.changes[0].after.as_ref().unwrap().get_int("balance"),
//!     Some(50),
//! );
//!
//! // An aborted write is invisible to observers — no P1, by construction.
//! let txn = db.begin();
//! txn.update("accounts", id, Row::new().with("balance", 1_000_000)).unwrap();
//! txn.abort().unwrap();
//! assert!(watcher.try_recv().is_none());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use critique_core as core;
pub use critique_engine as engine;
pub use critique_harness as harness;
pub use critique_history as history;
pub use critique_lock as lock;
pub use critique_storage as storage;
pub use critique_workloads as workloads;

/// The most commonly used types across the workspace, in one import.
pub mod prelude {
    pub use critique_core::prelude::*;
    pub use critique_engine::prelude::*;
    pub use critique_harness::ReproductionReport;
    pub use critique_history::prelude::*;
    // `critique_storage::Comparison` (the predicate operator) is left out to
    // avoid clashing with `critique_core::lattice::Comparison`; reach it via
    // `critique_storage::Comparison` when needed.
    pub use critique_storage::prelude::{
        BackendKind, ColumnValue, Condition, GroupCommit, KeyInterval, LogStore, LogStoreConfig,
        MvStore, Row, RowId, RowPredicate, ScanView, Snapshot, StorageBackend, StorageError,
        TableName, Timestamp, TimestampOracle, TxnToken, Version, VersionChain, WriteKind,
    };
    pub use critique_workloads::prelude::*;
}
