//! Property-based tests over randomly generated histories and executions.

use ansi_isolation_critique::prelude::*;
use critique_history::equivalence::si_to_single_version;
use critique_history::{DependencyGraph, HistoryBuilder, MvHistory};
use proptest::prelude::*;

/// Strategy: a random interleaved history over a few transactions and
/// items, where every transaction eventually commits or aborts.
fn arbitrary_history() -> impl Strategy<Value = History> {
    let op = (1u32..=4, 0u32..4, prop::bool::ANY);
    (
        proptest::collection::vec(op, 1..40),
        proptest::collection::vec(prop::bool::ANY, 4),
    )
        .prop_map(|(ops, commits)| {
            let mut builder = HistoryBuilder::new();
            for (txn, item, is_write) in ops {
                let name = format!("x{item}");
                builder = if is_write {
                    builder.write(txn, name)
                } else {
                    builder.read(txn, name)
                };
            }
            for (i, commit) in commits.iter().enumerate() {
                let txn = (i + 1) as u32;
                builder = if *commit {
                    builder.commit(txn)
                } else {
                    builder.abort(txn)
                };
            }
            builder.build().expect("terminators appended last")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn notation_round_trips(history in arbitrary_history()) {
        let text = history.to_notation();
        let reparsed = History::parse(&text).unwrap();
        prop_assert_eq!(history, reparsed);
    }

    #[test]
    fn serial_histories_exhibit_no_phenomena(_order in Just(()), history in arbitrary_history()) {
        // Serialise the same transactions: no phenomenon may remain.
        let txns = history.transactions();
        let serial = history.serialize_in_order(&txns);
        prop_assert!(serial.is_serial());
        prop_assert!(detect::detect_all(&serial).is_empty());
        prop_assert!(conflict_serializable(&serial).is_serializable());
    }

    #[test]
    fn strict_anomalies_imply_their_broad_phenomena(history in arbitrary_history()) {
        for p in Phenomenon::ALL {
            if let Some(broad) = p.broad_form() {
                if detect::exhibits(&history, p) {
                    prop_assert!(
                        detect::exhibits(&history, broad),
                        "{} without {}", p.code(), broad.code()
                    );
                }
            }
        }
    }

    #[test]
    fn histories_without_p0_p1_p2_p3_over_committed_txns_are_serializable(history in arbitrary_history()) {
        // The committed projection of a history that exhibits none of the
        // broad phenomena P0-P3 has an acyclic dependency graph (Remark 6's
        // "disguised locking" direction).
        let committed = history.committed_projection();
        let clean = [Phenomenon::P0, Phenomenon::P1, Phenomenon::P2, Phenomenon::P3]
            .iter()
            .all(|p| !detect::exhibits(&committed, *p));
        if clean {
            prop_assert!(conflict_serializable(&committed).is_serializable());
        }
    }

    #[test]
    fn dependency_graph_edges_follow_history_order(history in arbitrary_history()) {
        let graph = DependencyGraph::from_history(&history);
        for edge in graph.edges() {
            for conflict in &edge.conflicts {
                prop_assert!(conflict.first_index < conflict.second_index);
                prop_assert_eq!(conflict.first_txn, edge.from);
                prop_assert_eq!(conflict.second_txn, edge.to);
            }
        }
    }
}

/// Strategy for a batch of sequential account updates executed through the
/// engine at a random isolation level.
fn level_strategy() -> impl Strategy<Value = IsolationLevel> {
    prop::sample::select(IsolationLevel::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sequential_transactions_are_always_serializable(
        level in level_strategy(),
        deltas in proptest::collection::vec(-20i64..20, 1..12),
    ) {
        // Whatever the isolation level, *sequential* (non-concurrent)
        // transactions must preserve the invariant and record a
        // serializable, anomaly-free history.
        let db = Database::new(level);
        let setup = db.begin();
        let x = setup.insert("accounts", critique_storage::Row::new().with("balance", 100)).unwrap();
        let y = setup.insert("accounts", critique_storage::Row::new().with("balance", 100)).unwrap();
        setup.commit().unwrap();
        db.clear_history();

        for delta in &deltas {
            let t = db.begin();
            let bx = t.read("accounts", x).unwrap().unwrap().get_int("balance").unwrap();
            let by = t.read("accounts", y).unwrap().unwrap().get_int("balance").unwrap();
            t.update("accounts", x, critique_storage::Row::new().with("balance", bx - delta)).unwrap();
            t.update("accounts", y, critique_storage::Row::new().with("balance", by + delta)).unwrap();
            t.commit().unwrap();
        }
        let total = db.sum_committed(&critique_storage::RowPredicate::whole_table("accounts"), "balance");
        prop_assert_eq!(total, 200);
        let history = db.recorded_history();
        prop_assert!(conflict_serializable(&history).is_serializable());
        prop_assert!(detect::detect_all(&history).is_empty());
    }

    #[test]
    fn si_executions_map_to_dataflow_preserving_sv_histories(
        reads_first in prop::bool::ANY,
    ) {
        // Execute the H1 interleaving under Snapshot Isolation, reconstruct
        // the MV history by annotating versions, and confirm the mapped SV
        // history is serializable (the paper's H1.SI → H1.SI.SV argument).
        let mv = if reads_first {
            MvHistory::parse(
                "r1[x0=50] w1[x1=10] r2[x0=50] r2[y0=50] c2 r1[y0=50] w1[y1=90] c1",
            ).unwrap()
        } else {
            MvHistory::parse(
                "r2[x0=50] r1[x0=50] w1[x1=10] r2[y0=50] c2 r1[y0=50] w1[y1=90] c1",
            ).unwrap()
        };
        prop_assert!(mv.obeys_snapshot_visibility());
        let sv = si_to_single_version(&mv);
        prop_assert!(conflict_serializable(&sv).is_serializable());
    }
}
