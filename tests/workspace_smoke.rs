//! Workspace smoke test: drive one (or two) anomaly scenarios per isolation
//! level through the public facade and assert the Table 4 verdicts.
//!
//! Everything here goes through `ansi_isolation_critique::prelude` only —
//! if a re-export goes missing in the facade, this file stops compiling.

use ansi_isolation_critique::prelude::*;

fn outcome(scenario: AnomalyScenario, level: IsolationLevel) -> ScenarioOutcome {
    scenario.run(level).outcome
}

#[test]
fn degree0_even_admits_dirty_writes() {
    assert!(outcome(AnomalyScenario::DirtyWrite, IsolationLevel::Degree0).is_anomaly());
}

#[test]
fn read_uncommitted_admits_dirty_reads_but_not_dirty_writes() {
    // Table 4 row 1: P0 Not Possible, P1 Possible.
    assert!(!outcome(AnomalyScenario::DirtyWrite, IsolationLevel::ReadUncommitted).is_anomaly());
    assert!(outcome(AnomalyScenario::DirtyRead, IsolationLevel::ReadUncommitted).is_anomaly());
}

#[test]
fn read_committed_stops_dirty_reads_but_loses_updates() {
    // Table 4 row 2: P1 Not Possible, P4 Possible.
    assert!(!outcome(AnomalyScenario::DirtyRead, IsolationLevel::ReadCommitted).is_anomaly());
    assert!(outcome(AnomalyScenario::LostUpdate, IsolationLevel::ReadCommitted).is_anomaly());
}

#[test]
fn cursor_stability_protects_exactly_the_cursor_variant() {
    // Table 4 row 3: P4C Not Possible yet P4 "Sometimes Possible" — the
    // cursor-protected lost update is stopped, the plain one is not.
    assert!(!outcome(
        AnomalyScenario::CursorLostUpdate,
        IsolationLevel::CursorStability
    )
    .is_anomaly());
    assert!(outcome(AnomalyScenario::LostUpdate, IsolationLevel::CursorStability).is_anomaly());
}

#[test]
fn oracle_read_consistency_stops_cursor_lost_updates_but_not_plain_ones() {
    // Table 4 row 4: P1 Not Possible, P4C Not Possible, P4 Possible.
    assert!(!outcome(
        AnomalyScenario::DirtyRead,
        IsolationLevel::OracleReadConsistency
    )
    .is_anomaly());
    assert!(!outcome(
        AnomalyScenario::CursorLostUpdate,
        IsolationLevel::OracleReadConsistency
    )
    .is_anomaly());
    assert!(outcome(
        AnomalyScenario::LostUpdate,
        IsolationLevel::OracleReadConsistency
    )
    .is_anomaly());
}

#[test]
fn repeatable_read_admits_only_phantoms() {
    // Table 4 row 5: P2 Not Possible, P3 Possible.
    assert!(!outcome(AnomalyScenario::FuzzyRead, IsolationLevel::RepeatableRead).is_anomaly());
    assert!(outcome(AnomalyScenario::PhantomAnsi, IsolationLevel::RepeatableRead).is_anomaly());
}

#[test]
fn snapshot_isolation_stops_lost_update_but_admits_write_skew() {
    // Table 4 row 6 — the paper's headline about SI: First-Committer-Wins
    // makes P4 Not Possible, while A5B (Write Skew) remains Possible.
    assert!(!outcome(
        AnomalyScenario::LostUpdate,
        IsolationLevel::SnapshotIsolation
    )
    .is_anomaly());
    assert!(outcome(
        AnomalyScenario::WriteSkew,
        IsolationLevel::SnapshotIsolation
    )
    .is_anomaly());
    // And the Section 4.2 predicate-constraint phantom also slips through.
    assert!(outcome(
        AnomalyScenario::PhantomPredicateConstraint,
        IsolationLevel::SnapshotIsolation
    )
    .is_anomaly());
}

#[test]
fn serializable_prevents_every_scenario() {
    // Table 4 bottom row: everything Not Possible.
    for scenario in AnomalyScenario::ALL {
        assert!(
            !outcome(scenario, IsolationLevel::Serializable).is_anomaly(),
            "SERIALIZABLE must prevent {scenario:?}"
        );
    }
}

#[test]
fn every_scenario_outcome_is_consistent_with_the_papers_table4() {
    // Cross-check the full matrix through the facade: wherever the paper
    // says Not Possible the scenario must be prevented, wherever it says
    // Possible the scenario must materialise; "Sometimes Possible" cells
    // are exactly the ones where the plain and cursor-protected variants
    // disagree, so individual variants are allowed either outcome there.
    let paper = tables::table4();
    for level in IsolationLevel::TABLE4_ROWS {
        for scenario in AnomalyScenario::ALL {
            let Some(cell) = paper.cell(level.name(), scenario.phenomenon()) else {
                continue;
            };
            let observed = outcome(scenario, level);
            match cell {
                Possibility::NotPossible => assert!(
                    !observed.is_anomaly(),
                    "{scenario:?} at {level} must be prevented (paper: Not Possible)"
                ),
                Possibility::Possible => assert!(
                    observed.is_anomaly(),
                    "{scenario:?} at {level} must materialise (paper: Possible)"
                ),
                Possibility::SometimesPossible => {}
            }
        }
    }
}
