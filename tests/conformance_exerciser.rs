//! HISTEX-style randomized conformance exerciser.
//!
//! For every storage backend, every isolation level, and every seed in the
//! fixed matrix, the exerciser interleaves a randomized mixed workload —
//! item reads, predicate reads, updates, inserts, deletes, cursor
//! open/fetch/positioned-update/close, voluntary aborts — over a pool of
//! concurrent transactions, records the history the engine actually
//! produced, and then holds that history against the paper's Tables 3
//! and 4:
//!
//! * **freedom**: the history must be free of exactly the phenomena the
//!   level must prevent ("Not Possible" cells);
//! * **distinguishability**: every level below SERIALIZABLE must, across
//!   the seed matrix, demonstrably exhibit at least one anomaly its row
//!   permits — a scheduler that silently ran everything serially would
//!   pass the freedom check while proving nothing;
//! * **backend independence**: isolation levels are properties of
//!   histories, not storage engines — the same (level, seed) cell must
//!   produce a byte-identical history whether versions live in the
//!   sharded chain store or the append-only log
//!   (`conformance_cross_backend_histories_identical`).
//!
//! A second matrix (`conformance_range_*`) re-runs the same driver in
//! *range mode*: interval scans over an ordered `bucket` index on
//! `accounts` plus a predicate-read/write mix on a second `employees`
//! table, with Table 3's phantom verdicts enforced per table by
//! projecting each history onto one table at a time.
//!
//! The interleaving is driven single-threaded through the deterministic
//! `LockWaitPolicy::Fail` driver: each step picks a random live
//! transaction and advances it one operation, retrying blocked operations
//! until their blockers finish (with a random abort as deadlock-breaker).
//! One seed therefore always produces byte-identical histories — CI runs
//! the same matrix in `--release`, per backend, and failures reproduce
//! exactly.
//!
//! The positional phenomenon detectors interpret the recorded total order
//! the way the paper's single-version shorthand does, which is sound for
//! the *locking* levels: every recorded operation really happened inside
//! the lock-mediated critical section it claims.  That includes P4C at
//! Cursor Stability now that cursors are generated: the cursor lock is
//! held from a fetch (`rc`) to the positioned write (`wc`), and the P4C
//! detector requires exactly that pair.  The multiversion levels
//! (Snapshot Isolation, Oracle Read Consistency) intentionally admit
//! positional patterns like `w1[x] … w2[x]` while preventing the actual
//! anomaly at the version level (Section 4.2), so for them the exerciser
//! instead checks value-level guarantees: every written value is globally
//! unique, so a read's value identifies its writer exactly — no reading a
//! writer that had not committed (dirty reads), snapshot read stability,
//! and First-Committer-Wins for overlapping committed writers.

use ansi_isolation_critique::prelude::*;
use critique_history::TxnOutcome;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// The fixed seed matrix.  CI runs exactly these seeds; a failure report
/// names the seed, and re-running the test reproduces the history
/// byte-for-byte.
const SEEDS: [u64; 3] = [0xB5, 0x1995, 0xC0FFEE];

/// Levels exercised: every row of the paper's extended matrix.
const LEVELS: [IsolationLevel; 8] = IsolationLevel::ALL;

const SLOTS: usize = 5;
const TXNS_PER_RUN: usize = 48;
const MAX_STEPS: usize = 20_000;
const BLOCKED_RETRY_LIMIT: usize = 40;

/// One operation a transaction may attempt next.  Kept as data so a
/// blocked operation can be retried verbatim on a later step.
#[derive(Clone, Debug)]
enum PlannedOp {
    Read(RowId),
    PredicateRead(i64),
    Update(RowId, i64),
    Insert(i64, i64),
    Delete(RowId),
    OpenCursor(i64),
    Fetch,
    UpdateCurrent(i64),
    CloseCursor,
    Commit,
    Abort,
    // Range-mode traffic (`Exerciser::run_range`): interval scans over the
    // indexed `bucket` column of `accounts`, inserts that land inside a
    // scannable bucket, and a second predicate-read/write mix on the
    // `employees` table so predicates span two tables in one history.
    RangeRead(i64, i64),
    RangeInsert(i64, i64, i64),
    EmpPredicateRead(i64),
    EmpUpdate(RowId, i64),
    EmpInsert(i64, i64),
    EmpDelete(RowId),
}

struct Slot {
    txn: Transaction,
    ops_done: usize,
    ops_budget: usize,
    pending: Option<PlannedOp>,
    blocked_retries: usize,
    /// The transaction's cursor, if one is open.  A transaction opens at
    /// most one cursor in its lifetime and only scans forward — this is
    /// what makes the positional P4C detector sound at Cursor Stability
    /// (between `rc[x]` and `wc[x]` the cursor provably never left `x`).
    cursor: Option<CursorId>,
    cursor_spent: bool,
}

struct Exerciser {
    db: Database,
    rng: StdRng,
    rows: Vec<RowId>,
    /// Known `employees` rows (range mode only; empty otherwise).
    emp_rows: Vec<RowId>,
    next_value: i64,
    /// Route every update through a preceding `read_for_update` (the
    /// read-modify-write shape), so the configured `UpgradeStrategy`
    /// actually locks something.  Off for the default matrix, on for the
    /// U-lock freedom matrix.
    rmw_reads: bool,
    /// Range mode: seed a `bucket` index on `accounts` plus a second
    /// `employees` table, and plan interval scans and multi-table
    /// predicate traffic instead of cursors.  Off for the default matrix
    /// so its histories stay byte-identical to earlier revisions.
    range_mode: bool,
}

impl Exerciser {
    fn run(level: IsolationLevel, seed: u64, backend: BackendKind) -> History {
        Self::run_configured(
            level,
            seed,
            backend,
            UpgradeStrategy::SharedThenUpgrade,
            false,
            false,
        )
    }

    /// The same deterministic driver with update-mode locks: every update
    /// is preceded by a `read_for_update`, and the engine takes U locks
    /// for it.  U locks may *reorder* the interleaving (a blocked read
    /// retries later), but they must never admit a forbidden phenomenon —
    /// that is what "U locks alter no isolation verdict" means.
    fn run_update_lock(level: IsolationLevel, seed: u64, backend: BackendKind) -> History {
        Self::run_configured(
            level,
            seed,
            backend,
            UpgradeStrategy::UpdateLock,
            true,
            false,
        )
    }

    /// The range/multi-table matrix: interval scans over an ordered index
    /// plus predicate traffic on a second table, so one history carries
    /// phantom material for *two* predicate domains at once.
    fn run_range(level: IsolationLevel, seed: u64, backend: BackendKind) -> History {
        Self::run_configured(
            level,
            seed,
            backend,
            UpgradeStrategy::SharedThenUpgrade,
            false,
            true,
        )
    }

    /// The watcher leg's driver: the standard deterministic matrix cell
    /// with a table watcher on `accounts` subscribed for the whole
    /// interleaving.  Returns the recorded history *and* the notification
    /// stream, so the tests can hold the stream against the history as
    /// one more projection with its own forbidden phenomena ("no
    /// notification for an aborted write" is P1 for subscribers).
    fn run_watched(
        level: IsolationLevel,
        seed: u64,
        backend: BackendKind,
    ) -> (History, Vec<ChangeEvent>) {
        Self::run_instrumented(
            level,
            seed,
            backend,
            UpgradeStrategy::SharedThenUpgrade,
            false,
            false,
            true,
        )
    }

    fn run_configured(
        level: IsolationLevel,
        seed: u64,
        backend: BackendKind,
        upgrade: UpgradeStrategy,
        rmw_reads: bool,
        range_mode: bool,
    ) -> History {
        Self::run_instrumented(level, seed, backend, upgrade, rmw_reads, range_mode, false).0
    }

    fn run_instrumented(
        level: IsolationLevel,
        seed: u64,
        backend: BackendKind,
        upgrade: UpgradeStrategy,
        rmw_reads: bool,
        range_mode: bool,
        watch: bool,
    ) -> (History, Vec<ChangeEvent>) {
        let db = Database::with_config(
            EngineConfig::new(level)
                .with_backend(backend)
                .with_upgrade_strategy(upgrade),
        );
        let mut ex = Exerciser {
            db,
            rng: StdRng::seed_from_u64(seed),
            rows: Vec::new(),
            emp_rows: Vec::new(),
            next_value: 1_000_000,
            rmw_reads,
            range_mode,
        };
        if range_mode {
            // Range scans route through the ordered index on `bucket`.
            ex.db.store().create_table("accounts");
            ex.db.store().create_index("accounts", "bucket");
        }
        // Seed rows across two predicate regions, every balance unique.
        let setup = ex.db.begin();
        for i in 0..8 {
            let value = ex.fresh_value();
            let mut row = Row::new().with("balance", value).with("region", i % 2);
            if range_mode {
                row = row.with("bucket", i);
            }
            let row = setup.insert("accounts", row).expect("seed insert");
            ex.rows.push(row);
        }
        if range_mode {
            // A second table with its own predicate regions (`dept`), so
            // multi-table predicate histories have material on both sides.
            for i in 0..8 {
                let value = ex.fresh_value();
                let row = setup
                    .insert(
                        "employees",
                        Row::new().with("balance", value).with("dept", i % 2),
                    )
                    .expect("seed insert");
                ex.emp_rows.push(row);
            }
        }
        setup.commit().expect("seed commit");
        ex.db.clear_history();
        // Subscribed after the seed commit, symmetric with clearing the
        // history: the watcher observes exactly the commits the recorded
        // history commits.
        let watcher = watch.then(|| ex.db.watch_table("accounts"));
        ex.interleave();
        let events = watcher.map(|w| w.drain()).unwrap_or_default();
        (ex.db.recorded_history(), events)
    }

    fn fresh_value(&mut self) -> i64 {
        self.next_value += 1;
        self.next_value
    }

    fn interleave(&mut self) {
        let mut slots: Vec<Option<Slot>> = (0..SLOTS).map(|_| None).collect();
        let mut remaining = TXNS_PER_RUN;
        for step in 0..MAX_STEPS {
            for slot in slots.iter_mut() {
                if slot.is_none() && remaining > 0 {
                    remaining -= 1;
                    *slot = Some(Slot {
                        txn: self.db.begin(),
                        ops_done: 0,
                        ops_budget: self.rng.gen_range(3..7usize),
                        pending: None,
                        blocked_retries: 0,
                        cursor: None,
                        cursor_spent: false,
                    });
                }
            }
            let live: Vec<usize> = (0..slots.len()).filter(|i| slots[*i].is_some()).collect();
            if live.is_empty() {
                return;
            }
            let pick = live[self.rng.gen_range(0..live.len())];
            let finished = {
                let slot = slots[pick].as_mut().expect("picked a live slot");
                // A transaction stuck behind blockers for too long is the
                // deadlock-breaker's victim.
                if slot.blocked_retries > BLOCKED_RETRY_LIMIT {
                    let _ = slot.txn.abort();
                    true
                } else {
                    let op = match slot.pending.take() {
                        Some(op) => op,
                        None => Self::plan(
                            &mut self.rng,
                            &self.rows,
                            &self.emp_rows,
                            &mut self.next_value,
                            slot,
                            self.range_mode,
                        ),
                    };
                    Self::execute(&mut self.rows, &mut self.emp_rows, slot, op, self.rmw_reads)
                }
            };
            if finished {
                slots[pick] = None;
            }
            let _ = step;
        }
        // Step budget exhausted (pathological seed): drain what is left.
        for slot in slots.iter_mut().filter_map(|s| s.as_mut()) {
            let _ = slot.txn.commit();
        }
    }

    fn plan(
        rng: &mut StdRng,
        rows: &[RowId],
        emp_rows: &[RowId],
        next_value: &mut i64,
        slot: &mut Slot,
        range_mode: bool,
    ) -> PlannedOp {
        if slot.ops_done >= slot.ops_budget {
            return if rng.gen_bool(0.9) {
                PlannedOp::Commit
            } else {
                PlannedOp::Abort
            };
        }
        if range_mode {
            // The range/multi-table mix: interval scans over `bucket`,
            // predicate reads and writes on both tables, no cursors.  The
            // dice split keeps enough predicate reads *and* enough inserts
            // and deletes on each table that phantoms materialise per
            // table at the permissive levels.
            let row = rows[rng.gen_range(0..rows.len())];
            let emp = emp_rows[rng.gen_range(0..emp_rows.len())];
            let dice = rng.gen_range(0..100u64);
            return if dice < 18 {
                PlannedOp::Read(row)
            } else if dice < 28 {
                PlannedOp::PredicateRead(rng.gen_range(0..2u64) as i64)
            } else if dice < 42 {
                // A three-bucket window; scannable buckets are 0..=9.
                let lo = rng.gen_range(0..8i64);
                PlannedOp::RangeRead(lo, lo + 2)
            } else if dice < 54 {
                PlannedOp::EmpPredicateRead(rng.gen_range(0..2u64) as i64)
            } else if dice < 66 {
                *next_value += 1;
                PlannedOp::Update(row, *next_value)
            } else if dice < 74 {
                *next_value += 1;
                PlannedOp::EmpUpdate(emp, *next_value)
            } else if dice < 82 {
                let region = rng.gen_range(0..2u64) as i64;
                let bucket = rng.gen_range(0..10i64);
                *next_value += 1;
                PlannedOp::RangeInsert(region, *next_value, bucket)
            } else if dice < 90 {
                let dept = rng.gen_range(0..2u64) as i64;
                *next_value += 1;
                PlannedOp::EmpInsert(dept, *next_value)
            } else if dice < 95 {
                PlannedOp::Delete(row)
            } else {
                PlannedOp::EmpDelete(emp)
            };
        }
        let row = rows[rng.gen_range(0..rows.len())];
        let region = rng.gen_range(0..2u64) as i64;
        let dice = rng.gen_range(0..100u64);
        if dice < 30 {
            PlannedOp::Read(row)
        } else if dice < 42 {
            PlannedOp::PredicateRead(region)
        } else if dice < 64 {
            *next_value += 1;
            PlannedOp::Update(row, *next_value)
        } else if dice < 72 {
            *next_value += 1;
            PlannedOp::Insert(region, *next_value)
        } else if dice < 78 {
            PlannedOp::Delete(row)
        } else if let Some(_cursor) = slot.cursor {
            // Drive the open cursor: mostly fetch forward, sometimes write
            // through the position, occasionally close.
            let sub = rng.gen_range(0..10u64);
            if sub < 5 {
                PlannedOp::Fetch
            } else if sub < 8 {
                *next_value += 1;
                PlannedOp::UpdateCurrent(*next_value)
            } else {
                PlannedOp::CloseCursor
            }
        } else if !slot.cursor_spent {
            PlannedOp::OpenCursor(region)
        } else {
            PlannedOp::Read(row)
        }
    }

    /// Run one operation; returns true when the transaction finished.
    fn execute(
        rows: &mut Vec<RowId>,
        emp_rows: &mut Vec<RowId>,
        slot: &mut Slot,
        op: PlannedOp,
        rmw_reads: bool,
    ) -> bool {
        enum Effect {
            None,
            NewRow(RowId),
            NewEmpRow(RowId),
            CursorOpened(CursorId),
            CursorClosed,
        }
        let result: Result<Effect, TxnError> = match &op {
            PlannedOp::Read(row) => slot.txn.read("accounts", *row).map(|_| Effect::None),
            PlannedOp::PredicateRead(region) => {
                let predicate = RowPredicate::new("accounts", Condition::eq("region", *region));
                slot.txn.read_where(&predicate).map(|_| Effect::None)
            }
            PlannedOp::Update(row, value) => {
                // In RMW mode the update declares itself at a read first,
                // so the configured UpgradeStrategy decides the read's
                // lock mode.  A blocked half leaves the whole op pending;
                // the retry re-runs both halves verbatim.
                let declared = if rmw_reads {
                    slot.txn.read_for_update("accounts", *row).map(|_| ())
                } else {
                    Ok(())
                };
                declared
                    .and_then(|()| {
                        slot.txn
                            .update("accounts", *row, Row::new().with("balance", *value))
                    })
                    .map(|_| Effect::None)
            }
            PlannedOp::Insert(region, value) => slot
                .txn
                .insert(
                    "accounts",
                    Row::new().with("balance", *value).with("region", *region),
                )
                .map(Effect::NewRow),
            PlannedOp::Delete(row) => slot.txn.delete("accounts", *row).map(|_| Effect::None),
            PlannedOp::OpenCursor(region) => {
                let predicate = RowPredicate::new("accounts", Condition::eq("region", *region));
                slot.txn.open_cursor(&predicate).map(Effect::CursorOpened)
            }
            PlannedOp::Fetch => {
                let cursor = slot.cursor.expect("fetch planned only with a cursor");
                slot.txn.fetch(cursor).map(|_| Effect::None)
            }
            PlannedOp::UpdateCurrent(value) => {
                let cursor = slot
                    .cursor
                    .expect("positioned update planned only with a cursor");
                slot.txn
                    .update_current(cursor, Row::new().with("balance", *value))
                    .map(|_| Effect::None)
            }
            PlannedOp::CloseCursor => {
                let cursor = slot.cursor.expect("close planned only with a cursor");
                slot.txn.close_cursor(cursor).map(|_| Effect::CursorClosed)
            }
            PlannedOp::RangeRead(lo, hi) => {
                let range = KeyInterval::range(Some(*lo), Some(*hi));
                slot.txn
                    .read_range("accounts", "bucket", &range)
                    .map(|_| Effect::None)
            }
            PlannedOp::RangeInsert(region, value, bucket) => slot
                .txn
                .insert(
                    "accounts",
                    Row::new()
                        .with("balance", *value)
                        .with("region", *region)
                        .with("bucket", *bucket),
                )
                .map(Effect::NewRow),
            PlannedOp::EmpPredicateRead(dept) => {
                let predicate = RowPredicate::new("employees", Condition::eq("dept", *dept));
                slot.txn.read_where(&predicate).map(|_| Effect::None)
            }
            PlannedOp::EmpUpdate(row, value) => {
                let declared = if rmw_reads {
                    slot.txn.read_for_update("employees", *row).map(|_| ())
                } else {
                    Ok(())
                };
                declared
                    .and_then(|()| {
                        slot.txn
                            .update("employees", *row, Row::new().with("balance", *value))
                    })
                    .map(|_| Effect::None)
            }
            PlannedOp::EmpInsert(dept, value) => slot
                .txn
                .insert(
                    "employees",
                    Row::new().with("balance", *value).with("dept", *dept),
                )
                .map(Effect::NewEmpRow),
            PlannedOp::EmpDelete(row) => slot.txn.delete("employees", *row).map(|_| Effect::None),
            PlannedOp::Commit => {
                // A First-Committer-Wins refusal still terminates the
                // transaction; either way the slot is done.
                let _ = slot.txn.commit();
                return true;
            }
            PlannedOp::Abort => {
                let _ = slot.txn.abort();
                return true;
            }
        };
        match result {
            Ok(effect) => {
                match effect {
                    Effect::NewRow(row) => rows.push(row),
                    Effect::NewEmpRow(row) => emp_rows.push(row),
                    Effect::CursorOpened(cursor) => {
                        slot.cursor = Some(cursor);
                        slot.cursor_spent = true;
                    }
                    Effect::CursorClosed => slot.cursor = None,
                    Effect::None => {}
                }
                slot.ops_done += 1;
                slot.blocked_retries = 0;
                false
            }
            Err(TxnError::WouldBlock { .. }) => {
                // Leave the operation pending; a later step retries it.
                slot.pending = Some(op);
                slot.blocked_retries += 1;
                false
            }
            // A row that never became visible (its inserter aborted), a
            // first-committer casualty, a cursor past its end or gone
            // stale, or similar: skip the operation or accept the abort.
            Err(
                TxnError::Storage(_)
                | TxnError::StaleCursor { .. }
                | TxnError::NoSuchCursor
                | TxnError::CursorNotPositioned,
            ) => {
                slot.ops_done += 1;
                slot.blocked_retries = 0;
                false
            }
            Err(_) => !slot.txn.is_active(),
        }
    }
}

/// The phenomena whose positional detectors are sound on histories
/// recorded at `level` — every "Not Possible" cell for the locking
/// levels, where the recorded total order is lock-mediated.
fn forbidden_positional(level: IsolationLevel) -> Vec<Phenomenon> {
    match level {
        // Multiversion levels: positional patterns over-report (see the
        // module docs); their guarantees are checked by value instead.
        IsolationLevel::SnapshotIsolation => Vec::new(),
        // Read Consistency takes real long write locks, so dirty writes
        // are positionally impossible; its read-side guarantees are
        // value-level.
        IsolationLevel::OracleReadConsistency => vec![Phenomenon::P0],
        _ => Phenomenon::ALL
            .into_iter()
            .filter(|p| tables::possibility(level, *p) == Possibility::NotPossible)
            .collect(),
    }
}

/// Map every uniquely-valued write to its writer and position.
fn writers_by_value(history: &History) -> BTreeMap<i64, (critique_history::TxnId, usize)> {
    let mut writers = BTreeMap::new();
    for (i, op) in history.ops().iter().enumerate() {
        if op.is_write() {
            if let Some(value) = op.value {
                writers.insert(value.0, (op.txn, i));
            }
        }
    }
    writers
}

/// No transaction ever observes a value whose writer had not committed by
/// the time of the read (sound for SI and Read Consistency because every
/// written value is globally unique).
fn assert_no_dirty_values(history: &History, context: &str) {
    let writers = writers_by_value(history);
    for (i, op) in history.ops().iter().enumerate() {
        if !op.is_read() {
            continue;
        }
        let Some(value) = op.value else { continue };
        let Some(&(writer, _)) = writers.get(&value.0) else {
            continue; // seed-phase value, cleared from the history
        };
        if writer == op.txn {
            continue;
        }
        let committed_before = history.outcome(writer) == TxnOutcome::Committed
            && history.termination_index(writer).is_some_and(|c| c < i);
        assert!(
            committed_before,
            "{context}: op {i} read value {} written by uncommitted {writer}\n{}",
            value.0,
            history.to_notation(),
        );
    }
}

/// Snapshot stability: a Snapshot Isolation transaction that reads the
/// same item twice sees the same value, unless it wrote the item itself in
/// between (in which case it sees its own write).
fn assert_snapshot_stability(history: &History, context: &str) {
    for txn in history.transactions() {
        let mut seen: BTreeMap<String, i64> = BTreeMap::new();
        for (i, op) in history.ops_of(txn) {
            let Some(item) = op.item() else { continue };
            let Some(value) = op.value else { continue };
            if op.is_write() {
                seen.insert(item.name().to_string(), value.0);
            } else if op.is_read() {
                match seen.get(item.name()) {
                    Some(&expected) => assert_eq!(
                        value.0,
                        expected,
                        "{context}: {txn} re-read {} at op {i} and saw a different value\n{}",
                        item.name(),
                        history.to_notation(),
                    ),
                    None => {
                        seen.insert(item.name().to_string(), value.0);
                    }
                }
            }
        }
    }
}

/// First-Committer-Wins: two committed transactions whose execution
/// intervals overlapped never both wrote the same item.
fn assert_first_committer_wins(history: &History, context: &str) {
    // Per item: committed writers with their (first-op, commit) interval.
    let mut spans: BTreeMap<String, Vec<(critique_history::TxnId, usize, usize)>> = BTreeMap::new();
    for (i, op) in history.ops().iter().enumerate() {
        if !op.is_write() || history.outcome(op.txn) != TxnOutcome::Committed {
            continue;
        }
        let Some(item) = op.item() else { continue };
        let commit = history
            .termination_index(op.txn)
            .expect("committed transaction has a terminator");
        let first = history
            .ops_of(op.txn)
            .first()
            .map(|(idx, _)| *idx)
            .expect("transaction has operations");
        let entry = spans.entry(item.name().to_string()).or_default();
        if !entry.iter().any(|(t, _, _)| *t == op.txn) {
            entry.push((op.txn, first, commit));
        }
        let _ = i;
    }
    for (item, writers) in &spans {
        for (a, pair) in writers.iter().enumerate() {
            for other in writers.iter().skip(a + 1) {
                let (t1, first1, commit1) = *pair;
                let (t2, first2, commit2) = *other;
                let overlap = first1 < commit2 && first2 < commit1;
                assert!(
                    !overlap,
                    "{context}: committed {t1} and {t2} both wrote {item} with overlapping \
                     execution intervals — First-Committer-Wins failed\n{}",
                    history.to_notation(),
                );
            }
        }
    }
}

/// Run the full (level × seed) matrix on one backend: every history free
/// of its forbidden phenomena, every sub-SERIALIZABLE level demonstrably
/// anomalous, and the weaker locking levels showing their *characteristic*
/// anomaly, not just any.
fn run_matrix(backend: BackendKind) {
    // code → which permitted anomalies materialised, per level.
    let mut evidence: BTreeMap<IsolationLevel, BTreeSet<&'static str>> = BTreeMap::new();
    for level in LEVELS {
        let mut permitted_seen: BTreeSet<&'static str> = BTreeSet::new();
        for seed in SEEDS {
            let history = Exerciser::run(level, seed, backend);
            let context = format!("[{backend}] {} seed {seed:#x}", level.name());
            assert!(
                !history.is_empty(),
                "{context}: the exerciser recorded nothing"
            );

            // Freedom: exactly the phenomena the level must prevent.
            for phenomenon in forbidden_positional(level) {
                let found = detect(&history, phenomenon);
                assert!(
                    found.is_empty(),
                    "{context}: forbidden {phenomenon} occurred: {}\n{}",
                    found[0],
                    history.to_notation(),
                );
            }
            match level {
                IsolationLevel::SnapshotIsolation => {
                    assert_no_dirty_values(&history, &context);
                    assert_snapshot_stability(&history, &context);
                    assert_first_committer_wins(&history, &context);
                }
                IsolationLevel::OracleReadConsistency => {
                    assert_no_dirty_values(&history, &context);
                }
                _ => {}
            }

            // Distinguishability bookkeeping: which permitted anomalies
            // actually showed up.
            for phenomenon in Phenomenon::ALL {
                if tables::possibility(level, phenomenon) != Possibility::NotPossible
                    && exhibits(&history, phenomenon)
                {
                    permitted_seen.insert(phenomenon.code());
                }
            }
        }
        evidence.insert(level, permitted_seen);
    }

    // Every level below SERIALIZABLE must have demonstrated at least one
    // anomaly its Table 3/4 row permits, and the weaker locking levels
    // must show their *characteristic* anomaly, not just any.
    for level in LEVELS {
        if level == IsolationLevel::Serializable {
            continue;
        }
        let seen = &evidence[&level];
        assert!(
            !seen.is_empty(),
            "[{backend}] {}: no permitted anomaly materialised across the seed matrix — \
             the run distinguishes nothing",
            level.name(),
        );
    }
    let must_show = [
        (IsolationLevel::Degree0, "P0"),
        (IsolationLevel::ReadUncommitted, "P1"),
        (IsolationLevel::ReadCommitted, "P2"),
        (IsolationLevel::CursorStability, "P2"),
        (IsolationLevel::RepeatableRead, "P3"),
        // SI forbids every ANSI anomaly; what remains observable is the
        // predicate-constraint phantom ("Sometimes Possible" in Table 4).
        (IsolationLevel::SnapshotIsolation, "P3"),
    ];
    for (level, code) in must_show {
        assert!(
            evidence[&level].contains(code),
            "[{backend}] {}: expected the seed matrix to exhibit its characteristic {code}; \
             saw {:?}",
            level.name(),
            evidence[&level],
        );
    }
}

#[test]
fn conformance_mvstore_matrix() {
    run_matrix(BackendKind::MvStore);
}

#[test]
fn conformance_logstore_matrix() {
    run_matrix(BackendKind::LogStructured);
}

fn run_determinism(backend: BackendKind) {
    for level in [
        IsolationLevel::Serializable,
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::CursorStability,
    ] {
        let a = Exerciser::run(level, SEEDS[0], backend);
        let b = Exerciser::run(level, SEEDS[0], backend);
        assert_eq!(
            a.to_notation(),
            b.to_notation(),
            "[{backend}] same seed, same level, different history at {level}"
        );
    }
}

#[test]
fn conformance_mvstore_determinism_per_seed() {
    run_determinism(BackendKind::MvStore);
}

#[test]
fn conformance_logstore_determinism_per_seed() {
    run_determinism(BackendKind::LogStructured);
}

/// Isolation levels are properties of histories, not storage engines: the
/// deterministic driver must record a byte-identical history for every
/// (level, seed) cell no matter which backend holds the versions.
#[test]
fn conformance_cross_backend_histories_identical() {
    for level in LEVELS {
        for seed in SEEDS {
            let reference = Exerciser::run(level, seed, BackendKind::MvStore);
            let log = Exerciser::run(level, seed, BackendKind::LogStructured);
            assert_eq!(
                reference.to_notation(),
                log.to_notation(),
                "{} seed {seed:#x}: the log-structured backend diverged from the \
                 chain store",
                level.name(),
            );
        }
    }
}

/// The cursor extension must actually exercise P4C's ingredients at
/// Cursor Stability: cursor reads and positioned writes appear in the
/// recorded histories (the freedom check above then proves P4C absent).
///
/// Naming: CI's conformance job runs this file as a name-filtered matrix
/// (`conformance_mvstore` / `conformance_logstore` /
/// `conformance_cross_backend` / `conformance_range`) — every test here
/// must keep one of those prefixes or it silently drops out of the
/// release conformance gate.  This one checks both backends, so it rides
/// the cross_backend leg.
#[test]
fn conformance_cross_backend_cursor_ops_are_generated() {
    for backend in BackendKind::ALL {
        let mut cursor_reads = 0usize;
        let mut cursor_writes = 0usize;
        for seed in SEEDS {
            let history = Exerciser::run(IsolationLevel::CursorStability, seed, backend);
            let notation = history.to_notation();
            cursor_reads += notation.matches("rc").count();
            cursor_writes += notation.matches("wc").count();
        }
        assert!(
            cursor_reads > 0 && cursor_writes > 0,
            "[{backend}] the seed matrix generated no cursor traffic at Cursor Stability \
             (rc={cursor_reads}, wc={cursor_writes})"
        );
    }
}

/// "U locks alter no isolation verdict", made executable: the full
/// 8-level × 3-seed matrix re-run with `UpgradeStrategy::UpdateLock` and
/// every update declared at a `read_for_update`.  Update-mode locks may
/// reorder the interleaving (a U conflict retries where a Shared grant
/// would have proceeded), so histories legitimately differ from the
/// default matrix — but they may only ever be *more* restrictive: every
/// "Not Possible" cell must stay impossible, the multiversion value-level
/// guarantees must hold untouched (SI and Read Consistency take no read
/// locks, FOR UPDATE or not), and the two storage backends must still
/// record byte-identical histories per (level, seed) cell.
///
/// Naming: rides CI's `cross_backend` conformance leg (see the note on
/// `conformance_cross_backend_cursor_ops_are_generated`).
#[test]
fn conformance_cross_backend_update_lock_alters_no_verdict() {
    for level in LEVELS {
        for seed in SEEDS {
            let reference = Exerciser::run_update_lock(level, seed, BackendKind::MvStore);
            let log = Exerciser::run_update_lock(level, seed, BackendKind::LogStructured);
            assert_eq!(
                reference.to_notation(),
                log.to_notation(),
                "{} seed {seed:#x}: backends diverged under update-mode locks",
                level.name(),
            );
            let context = format!("[update-lock] {} seed {seed:#x}", level.name());
            assert!(
                !reference.is_empty(),
                "{context}: the exerciser recorded nothing"
            );
            for phenomenon in forbidden_positional(level) {
                let found = detect(&reference, phenomenon);
                assert!(
                    found.is_empty(),
                    "{context}: U locks admitted forbidden {phenomenon}: {}\n{}",
                    found[0],
                    reference.to_notation(),
                );
            }
            match level {
                IsolationLevel::SnapshotIsolation => {
                    assert_no_dirty_values(&reference, &context);
                    assert_snapshot_stability(&reference, &context);
                    assert_first_committer_wins(&reference, &context);
                }
                IsolationLevel::OracleReadConsistency => {
                    assert_no_dirty_values(&reference, &context);
                }
                _ => {}
            }
        }
    }
}

/// The tables the range/multi-table matrix spreads its predicates over.
const RANGE_TABLES: [&str; 2] = ["accounts", "employees"];

/// Project a history onto one table: keep every terminator plus exactly
/// the item and predicate operations that touch `table`.  The recorder
/// names items `table.row` and predicates `table[condition]`, so string
/// prefixes identify the table unambiguously (no table name here is a
/// prefix of another).  Phenomenon detection on the projection yields the
/// per-table verdict: a phantom on `employees` cannot hide behind traffic
/// on `accounts` and vice versa.
fn table_projection(history: &History, table: &str) -> History {
    let item_prefix = format!("{table}.");
    let predicate_prefix = format!("{table}[");
    let ops = history
        .ops()
        .iter()
        .filter(|op| {
            op.kind.is_terminator()
                || op
                    .kind
                    .item()
                    .is_some_and(|item| item.name().starts_with(&item_prefix))
                || op
                    .kind
                    .predicate()
                    .is_some_and(|predicate| predicate.name().starts_with(&predicate_prefix))
        })
        .cloned()
        .collect();
    History::from_ops_unchecked(ops)
}

/// The range/multi-table conformance matrix: every (level, seed) cell run
/// with interval scans over the ordered `bucket` index and predicate
/// traffic on two tables, with the paper's verdicts enforced *per table*
/// — freedom on each table's projection at the restrictive levels, and
/// phantom evidence on **both** tables at the permissive ones.
fn run_range_matrix(backend: BackendKind) {
    let mut evidence: BTreeMap<IsolationLevel, BTreeSet<&'static str>> = BTreeMap::new();
    // level → tables whose projection exhibited a phantom somewhere in the
    // seed matrix.
    let mut phantoms: BTreeMap<IsolationLevel, BTreeSet<&'static str>> = BTreeMap::new();
    for level in LEVELS {
        let mut permitted_seen: BTreeSet<&'static str> = BTreeSet::new();
        let phantom_tables = phantoms.entry(level).or_default();
        for seed in SEEDS {
            let history = Exerciser::run_range(level, seed, backend);
            let context = format!("[{backend}] range {} seed {seed:#x}", level.name());
            assert!(
                !history.is_empty(),
                "{context}: the exerciser recorded nothing"
            );

            // Freedom on the whole history, then per table: a projection
            // can only remove cross-table interleavings, so any forbidden
            // phenomenon inside one table must also be absent there.
            for phenomenon in forbidden_positional(level) {
                let found = detect(&history, phenomenon);
                assert!(
                    found.is_empty(),
                    "{context}: forbidden {phenomenon} occurred: {}\n{}",
                    found[0],
                    history.to_notation(),
                );
                for table in RANGE_TABLES {
                    let projection = table_projection(&history, table);
                    let found = detect(&projection, phenomenon);
                    assert!(
                        found.is_empty(),
                        "{context}: forbidden {phenomenon} occurred in the {table} \
                         projection: {}\n{}",
                        found[0],
                        projection.to_notation(),
                    );
                }
            }
            match level {
                IsolationLevel::SnapshotIsolation => {
                    assert_no_dirty_values(&history, &context);
                    assert_snapshot_stability(&history, &context);
                    assert_first_committer_wins(&history, &context);
                }
                IsolationLevel::OracleReadConsistency => {
                    assert_no_dirty_values(&history, &context);
                }
                _ => {}
            }

            for phenomenon in Phenomenon::ALL {
                if tables::possibility(level, phenomenon) != Possibility::NotPossible
                    && exhibits(&history, phenomenon)
                {
                    permitted_seen.insert(phenomenon.code());
                }
            }
            if tables::possibility(level, Phenomenon::P3) != Possibility::NotPossible {
                for table in RANGE_TABLES {
                    if exhibits(&table_projection(&history, table), Phenomenon::P3) {
                        phantom_tables.insert(table);
                    }
                }
            }
        }
        evidence.insert(level, permitted_seen);
    }

    for level in LEVELS {
        if level == IsolationLevel::Serializable {
            continue;
        }
        assert!(
            !evidence[&level].is_empty(),
            "[{backend}] range {}: no permitted anomaly materialised across the seed \
             matrix — the run distinguishes nothing",
            level.name(),
        );
    }
    // The point of the multi-table mix: at the phantom-permitting locking
    // levels, the seed matrix shows phantoms *in each table's own
    // projection* — Table 3's P3 row holds (and fails to hold) per
    // predicate domain, not merely somewhere in the interleaved whole.
    for level in [
        IsolationLevel::ReadCommitted,
        IsolationLevel::RepeatableRead,
    ] {
        for table in RANGE_TABLES {
            assert!(
                phantoms[&level].contains(table),
                "[{backend}] range {}: expected a phantom in the {table} projection \
                 across the seed matrix; saw {:?}",
                level.name(),
                phantoms[&level],
            );
        }
    }
}

/// Naming: rides CI's `range` conformance leg (name filter
/// `conformance_range` — see the note on
/// `conformance_cross_backend_cursor_ops_are_generated`).
#[test]
fn conformance_range_mvstore_matrix() {
    run_range_matrix(BackendKind::MvStore);
}

#[test]
fn conformance_range_logstore_matrix() {
    run_range_matrix(BackendKind::LogStructured);
}

/// Backend independence holds for range traffic too: interval scans go
/// through each backend's own ordered-index implementation, yet the
/// recorded history per (level, seed) cell must stay byte-identical.
#[test]
fn conformance_range_cross_backend_histories_identical() {
    for level in LEVELS {
        for seed in SEEDS {
            let reference = Exerciser::run_range(level, seed, BackendKind::MvStore);
            let log = Exerciser::run_range(level, seed, BackendKind::LogStructured);
            assert_eq!(
                reference.to_notation(),
                log.to_notation(),
                "range {} seed {seed:#x}: the log-structured backend diverged from \
                 the chain store",
                level.name(),
            );
        }
    }
}

/// The range mix must actually generate its ingredients on every backend:
/// interval predicate reads over `bucket` on `accounts`, and predicate
/// reads against `employees` — otherwise the per-table verdicts above
/// prove nothing.
#[test]
fn conformance_range_traffic_is_generated() {
    for backend in BackendKind::ALL {
        let mut interval_reads = 0usize;
        let mut employee_reads = 0usize;
        for seed in SEEDS {
            let history = Exerciser::run_range(IsolationLevel::ReadCommitted, seed, backend);
            for op in history.ops() {
                let Some(predicate) = op.kind.predicate() else {
                    continue;
                };
                if predicate.name().starts_with("accounts[") && predicate.name().contains("bucket")
                {
                    interval_reads += 1;
                }
                if predicate.name().starts_with("employees[") {
                    employee_reads += 1;
                }
            }
        }
        assert!(
            interval_reads > 0 && employee_reads > 0,
            "[{backend}] the range matrix generated no multi-table range traffic \
             (interval={interval_reads}, employees={employee_reads})"
        );
    }
}

// ---------------------------------------------------------------------
// Watcher leg: the notification stream as one more history projection.
//
// A watcher is a read-only observer, so per the paper's taxonomy its
// stream has its own forbidden phenomena: carrying a value written by a
// transaction that did not commit is P1 (dirty read) for subscribers,
// and delivering events out of commit order would hand observers a
// history the engine never produced.  The leg runs the full level ×
// seed matrix on both backends with a table watcher subscribed and
// holds the stream against the recorded history.
// ---------------------------------------------------------------------

/// The recorder's transaction id for a notifying token (same mapping
/// `HistoryRecorder` uses).
fn event_txn(event: &ChangeEvent) -> critique_history::TxnId {
    critique_history::TxnId(u32::try_from(event.txn.0).unwrap_or(u32::MAX))
}

/// Render a notification stream to a canonical string: commit order,
/// commit timestamps, and per-change kinds and images all participate in
/// byte-identical comparisons.
fn render_stream(events: &[ChangeEvent]) -> String {
    events
        .iter()
        .map(|event| {
            let changes = event
                .changes
                .iter()
                .map(|change| {
                    format!(
                        "{}.{} {} {:?}->{:?}",
                        change.table,
                        change.row.0,
                        change.kind,
                        change.before.as_ref().and_then(|r| r.get_int("balance")),
                        change.after.as_ref().and_then(|r| r.get_int("balance")),
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("{} c{} [{}]", event.commit_ts, event.txn.0, changes)
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn run_watch_matrix(backend: BackendKind) {
    let mut total_events = 0usize;
    let mut aborted_writers = 0usize;
    for level in LEVELS {
        for seed in SEEDS {
            let (history, events) = Exerciser::run_watched(level, seed, backend);
            let context = format!("[{backend}] watch {} seed {seed:#x}", level.name());
            let writers = writers_by_value(&history);

            // 1. No notification for an aborted write (P1 for
            //    subscribers): every event's transaction committed, its
            //    after images are its own committed writes, and its
            //    before images come from committed writers only.
            for event in &events {
                let txn = event_txn(event);
                assert_eq!(
                    history.outcome(txn),
                    TxnOutcome::Committed,
                    "{context}: notification for non-committed {txn}\n{}",
                    history.to_notation(),
                );
                for change in &event.changes {
                    if let Some(value) = change.after.as_ref().and_then(|r| r.get_int("balance")) {
                        if let Some(&(writer, _)) = writers.get(&value) {
                            // Committed state only — and at every level
                            // that forbids dirty writes (P0), the after
                            // image is the notifier's *own* write.  At
                            // Degree 0 two committed writers may overlap
                            // on one row, so only committedness holds.
                            assert_eq!(
                                history.outcome(writer),
                                TxnOutcome::Committed,
                                "{context}: after image {value} leaks uncommitted state \
                                 of {writer}\n{}",
                                history.to_notation(),
                            );
                            if tables::possibility(level, Phenomenon::P0)
                                == Possibility::NotPossible
                            {
                                assert_eq!(
                                    writer,
                                    txn,
                                    "{context}: after image {value} was written by {writer}, \
                                     not the notifying {txn}\n{}",
                                    history.to_notation(),
                                );
                            }
                        }
                    }
                    if let Some(value) = change.before.as_ref().and_then(|r| r.get_int("balance")) {
                        if let Some(&(writer, _)) = writers.get(&value) {
                            assert_eq!(
                                history.outcome(writer),
                                TxnOutcome::Committed,
                                "{context}: before image {value} leaks uncommitted state \
                                 of {writer}\n{}",
                                history.to_notation(),
                            );
                        }
                    }
                }
            }

            // 2. Notification order ≡ history commit order, byte for
            //    byte: the delivered sequence of commit terminators must
            //    equal the same transactions sorted by their terminator's
            //    position in the recorded history, and the carried commit
            //    timestamps must be strictly increasing.
            let delivered: Vec<critique_history::TxnId> = events.iter().map(event_txn).collect();
            let mut by_history = delivered.clone();
            by_history.sort_by_key(|txn| {
                history
                    .termination_index(*txn)
                    .unwrap_or_else(|| panic!("{context}: {txn} notified without a terminator"))
            });
            let render = |seq: &[critique_history::TxnId]| {
                seq.iter()
                    .map(|t| format!("c{}", t.0))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            assert_eq!(
                render(&delivered),
                render(&by_history),
                "{context}: notification order diverges from history commit order\n{}",
                history.to_notation(),
            );
            for pair in events.windows(2) {
                assert!(
                    pair[0].commit_ts < pair[1].commit_ts,
                    "{context}: commit timestamps not strictly increasing in the stream"
                );
            }

            // 3. Completeness: every committed transaction whose last
            //    write to some item was an insert or update (a valued
            //    write — its net effect on that item is necessarily
            //    visible) must have notified.  (A transaction whose every
            //    written item ends in a delete may have inserted it
            //    itself, netting to nothing; those are exempt here and
            //    pinned by the engine-level tests instead.)
            let delivered_set: BTreeSet<critique_history::TxnId> =
                delivered.iter().copied().collect();
            for txn in history.transactions() {
                if history.outcome(txn) != TxnOutcome::Committed {
                    continue;
                }
                let mut last_valued: BTreeMap<String, bool> = BTreeMap::new();
                for (_, op) in history.ops_of(txn) {
                    if op.is_write() {
                        if let Some(item) = op.item() {
                            last_valued.insert(item.name().to_string(), op.value.is_some());
                        }
                    }
                }
                if last_valued.values().any(|valued| *valued) {
                    assert!(
                        delivered_set.contains(&txn),
                        "{context}: committed writer {txn} produced no notification\n{}",
                        history.to_notation(),
                    );
                }
            }
            // Conversely, nothing notified without a write.
            for txn in &delivered_set {
                assert!(
                    history.ops_of(*txn).iter().any(|(_, op)| op.is_write()),
                    "{context}: read-only {txn} notified"
                );
            }

            total_events += events.len();
            aborted_writers += history
                .transactions()
                .into_iter()
                .filter(|txn| {
                    history.outcome(*txn) == TxnOutcome::Aborted
                        && history.ops_of(*txn).iter().any(|(_, op)| op.is_write())
                })
                .count();
        }
    }
    // The matrix must exercise both claims non-vacuously: notifications
    // actually flowed, and writers actually aborted (so "no notification
    // for an aborted write" had something to prove).
    assert!(
        total_events > 0,
        "[{backend}] the watch matrix delivered zero notifications"
    );
    assert!(
        aborted_writers > 0,
        "[{backend}] the watch matrix aborted no writers — the P1-freedom check is vacuous"
    );
}

#[test]
fn conformance_watch_mvstore_matrix() {
    run_watch_matrix(BackendKind::MvStore);
}

#[test]
fn conformance_watch_logstore_matrix() {
    run_watch_matrix(BackendKind::LogStructured);
}

/// Like histories, notification streams are properties of the schedule,
/// not the storage engine: the same (level, seed) cell must deliver a
/// byte-identical stream — commit timestamps, transaction ids, change
/// kinds, and images — on both backends.
#[test]
fn conformance_watch_cross_backend_streams_identical() {
    for level in LEVELS {
        for seed in SEEDS {
            let (_, mv) = Exerciser::run_watched(level, seed, BackendKind::MvStore);
            let (_, log) = Exerciser::run_watched(level, seed, BackendKind::LogStructured);
            assert_eq!(
                render_stream(&mv),
                render_stream(&log),
                "{} seed {seed:#x}: notification streams diverge across backends",
                level.name(),
            );
        }
    }
}

/// Subscribing a watcher must not perturb the engine: the recorded
/// history of a watched run is byte-identical to the unwatched run of
/// the same cell.
#[test]
fn conformance_watch_leaves_histories_untouched() {
    for level in [
        IsolationLevel::Serializable,
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::ReadCommitted,
    ] {
        for seed in SEEDS {
            let unwatched = Exerciser::run(level, seed, BackendKind::MvStore);
            let (watched, _) = Exerciser::run_watched(level, seed, BackendKind::MvStore);
            assert_eq!(
                unwatched.to_notation(),
                watched.to_notation(),
                "{} seed {seed:#x}: watching changed the recorded history",
                level.name(),
            );
        }
    }
}
