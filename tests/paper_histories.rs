//! End-to-end checks on the paper's canonical histories and their
//! relationship to the engine's recorded executions.

use ansi_isolation_critique::prelude::*;
use critique_history::canonical;
use critique_history::equivalence::si_to_single_version;

#[test]
fn every_canonical_history_round_trips_through_the_notation() {
    for (name, history) in canonical::all_named() {
        let reparsed = History::parse(&history.to_notation()).unwrap();
        assert_eq!(history, reparsed, "{name}");
    }
}

#[test]
fn the_h1_si_mapping_matches_the_paper_and_is_view_preserving() {
    let mv = canonical::h1_si();
    assert!(mv.obeys_snapshot_visibility());
    let sv = si_to_single_version(&mv);
    assert_eq!(sv, canonical::h1_si_sv());
    assert!(conflict_serializable(&sv).is_serializable());
}

#[test]
fn detectors_characterise_each_canonical_history_as_the_paper_describes() {
    use Phenomenon::*;
    let expectations: &[(&str, History, &[Phenomenon], &[Phenomenon])] = &[
        ("H1", canonical::h1(), &[P1], &[A1, A2, A3, P0]),
        ("H2", canonical::h2(), &[P2, A5A], &[P1, A1, A2, A3, P0]),
        ("H3", canonical::h3(), &[P3], &[A3, P0, P1]),
        ("H4", canonical::h4(), &[P4, P2], &[P4C, P0, P1]),
        ("H5", canonical::h5(), &[A5B, P2], &[P0, P1, A5A, P4]),
    ];
    for (name, history, must_have, must_not_have) in expectations {
        for p in *must_have {
            assert!(detect::exhibits(history, *p), "{name} must exhibit {p}");
        }
        for p in *must_not_have {
            assert!(
                !detect::exhibits(history, *p),
                "{name} must not exhibit {p}"
            );
        }
    }
}

#[test]
fn dirty_write_histories_defeat_before_image_recovery() {
    // The Section 3 recovery argument: after w1[x] w2[x] a1 neither
    // restoring nor keeping the before image is correct.  Our engine
    // prevents the situation (long write locks), so rollback is always
    // safe; at Degree 0 the situation is reproduced and detected.
    let recovery = canonical::dirty_write_recovery();
    assert!(detect::exhibits(&recovery, Phenomenon::P0));

    let constraint = canonical::dirty_write_constraint();
    assert!(detect::exhibits(&constraint, Phenomenon::P0));
    assert!(!conflict_serializable(&constraint).is_serializable());
}

#[test]
fn executed_serializable_runs_stay_serializable_and_anomaly_free() {
    // Re-execute a transfer/audit mix at SERIALIZABLE and confirm both the
    // serializability theorem and the absence of all phenomena on the
    // recorded history.
    let db = Database::new(IsolationLevel::Serializable);
    let setup = db.begin();
    let x = setup
        .insert("accounts", critique_storage::Row::new().with("balance", 50))
        .unwrap();
    let y = setup
        .insert("accounts", critique_storage::Row::new().with("balance", 50))
        .unwrap();
    setup.commit().unwrap();
    db.clear_history();

    for i in 0..4 {
        let t = db.begin();
        let bx = t
            .read("accounts", x)
            .unwrap()
            .unwrap()
            .get_int("balance")
            .unwrap();
        let by = t
            .read("accounts", y)
            .unwrap()
            .unwrap()
            .get_int("balance")
            .unwrap();
        t.update(
            "accounts",
            x,
            critique_storage::Row::new().with("balance", bx - i),
        )
        .unwrap();
        t.update(
            "accounts",
            y,
            critique_storage::Row::new().with("balance", by + i),
        )
        .unwrap();
        t.commit().unwrap();
    }
    let history = db.recorded_history();
    assert!(conflict_serializable(&history).is_serializable());
    assert!(detect::detect_all(&history).is_empty());
}

#[test]
fn the_reproduction_report_matches_the_paper() {
    let report = ReproductionReport::generate();
    assert!(report.fully_matches_paper(), "{}", report.to_text());
}
