//! The paper's ten Remarks, each checked mechanically against the
//! implementation.

use ansi_isolation_critique::prelude::*;
use critique_core::lattice::{compare, incomparable, weaker};
use critique_core::level::AnsiLevel;
use critique_core::locking::{LockDuration, LockProfile, LockRequirement};
use critique_core::tables;
use critique_history::canonical;

#[test]
fn remark_1_the_locking_levels_form_a_strict_chain() {
    use IsolationLevel::*;
    let chain = [ReadUncommitted, ReadCommitted, RepeatableRead, Serializable];
    for pair in chain.windows(2) {
        assert!(weaker(pair[0], pair[1]), "{} « {}", pair[0], pair[1]);
    }
}

#[test]
fn remark_2_and_6_locking_levels_are_at_least_as_strong_as_the_phenomenological_ones() {
    // The locking profile of each Table 3 row forbids exactly the phenomena
    // the phenomenological definition forbids: executing the profiles
    // (observed Table 3) reproduces the specification (Table 3).
    let cmp = ansi_isolation_critique::harness::matrix::compare_table3();
    assert!(cmp.mismatches().is_empty(), "{}", cmp.summary());
}

#[test]
fn remark_3_every_level_above_degree_0_excludes_dirty_writes() {
    for level in IsolationLevel::ALL {
        if level == IsolationLevel::Degree0 {
            continue;
        }
        assert_eq!(
            tables::possibility(level, Phenomenon::P0),
            Possibility::NotPossible,
            "{level}"
        );
        let observed = AnomalyScenario::DirtyWrite.run(level);
        assert!(
            !observed.outcome.is_anomaly(),
            "{level}: {}",
            observed.detail
        );
    }
}

#[test]
fn remark_4_the_broad_interpretations_are_required() {
    // H1, H2, H3 are non-serializable but admitted by the strict readings.
    for (history, level) in [
        (canonical::h1(), AnsiLevel::AnomalySerializable),
        (canonical::h2(), AnsiLevel::RepeatableRead),
        (canonical::h3(), AnsiLevel::AnomalySerializable),
    ] {
        assert!(!conflict_serializable(&history).is_serializable());
        assert!(level.permits(&history, Interpretation::Strict));
        assert!(!level.permits(&history, Interpretation::Broad));
    }
}

#[test]
fn remark_5_the_corrected_definitions_add_p0_and_use_broad_phenomena() {
    let table3 = tables::table3();
    for (label, _) in &table3.rows {
        assert_eq!(
            table3.cell(label, Phenomenon::P0),
            Some(Possibility::NotPossible)
        );
    }
}

#[test]
fn remark_6_lock_profiles_and_phenomena_tables_agree() {
    // SERIALIZABLE is the only two-phase well-formed profile, and it is the
    // only row of Table 3 that forbids every phenomenon.
    for profile in LockProfile::table2() {
        let forbids_everything = Phenomenon::TABLE3_COLUMNS
            .iter()
            .all(|p| tables::possibility(profile.level, *p) == Possibility::NotPossible);
        assert_eq!(
            profile.is_two_phase_well_formed(),
            forbids_everything && profile.level == IsolationLevel::Serializable,
            "{}",
            profile.level
        );
    }
    // Long write locks everywhere above Degree 0 (the recovery argument).
    for profile in LockProfile::table2().into_iter().skip(1) {
        assert_eq!(
            profile.write,
            LockRequirement::WellFormed(LockDuration::Long)
        );
    }
}

#[test]
fn remark_7_cursor_stability_sits_strictly_between_rc_and_rr() {
    assert!(weaker(
        IsolationLevel::ReadCommitted,
        IsolationLevel::CursorStability
    ));
    assert!(weaker(
        IsolationLevel::CursorStability,
        IsolationLevel::RepeatableRead
    ));
    // And the executable evidence: P4C possible at RC, not at CS; P4 still
    // sometimes possible at CS, never at RR.
    assert!(AnomalyScenario::CursorLostUpdate
        .run(IsolationLevel::ReadCommitted)
        .outcome
        .is_anomaly());
    assert!(!AnomalyScenario::CursorLostUpdate
        .run(IsolationLevel::CursorStability)
        .outcome
        .is_anomaly());
    assert!(AnomalyScenario::LostUpdate
        .run(IsolationLevel::CursorStability)
        .outcome
        .is_anomaly());
    assert!(!AnomalyScenario::LostUpdate
        .run(IsolationLevel::RepeatableRead)
        .outcome
        .is_anomaly());
}

#[test]
fn remark_8_read_committed_is_strictly_weaker_than_snapshot_isolation() {
    assert!(weaker(
        IsolationLevel::ReadCommitted,
        IsolationLevel::SnapshotIsolation
    ));
    // Executable witness: read skew (A5A) occurs at READ COMMITTED but not
    // under Snapshot Isolation.
    assert!(AnomalyScenario::ReadSkew
        .run(IsolationLevel::ReadCommitted)
        .outcome
        .is_anomaly());
    assert!(!AnomalyScenario::ReadSkew
        .run(IsolationLevel::SnapshotIsolation)
        .outcome
        .is_anomaly());
}

#[test]
fn remark_9_repeatable_read_and_snapshot_isolation_are_incomparable() {
    assert!(incomparable(
        IsolationLevel::RepeatableRead,
        IsolationLevel::SnapshotIsolation
    ));
    // Executable witnesses in both directions: SI allows write skew which
    // RR prevents; RR allows ANSI phantoms which SI prevents.
    assert!(AnomalyScenario::WriteSkew
        .run(IsolationLevel::SnapshotIsolation)
        .outcome
        .is_anomaly());
    assert!(!AnomalyScenario::WriteSkew
        .run(IsolationLevel::RepeatableRead)
        .outcome
        .is_anomaly());
    assert!(AnomalyScenario::PhantomAnsi
        .run(IsolationLevel::RepeatableRead)
        .outcome
        .is_anomaly());
    assert!(!AnomalyScenario::PhantomAnsi
        .run(IsolationLevel::SnapshotIsolation)
        .outcome
        .is_anomaly());
}

#[test]
fn remark_10_anomaly_serializable_is_weaker_than_snapshot_isolation() {
    // Snapshot Isolation excludes all three strict ANSI anomalies...
    for anomaly in Phenomenon::ANSI_STRICT {
        assert_eq!(
            tables::possibility(IsolationLevel::SnapshotIsolation, anomaly),
            Possibility::NotPossible
        );
    }
    // ...yet it is not serializable: the predicate-constraint phantom and
    // write skew still occur.
    assert!(AnomalyScenario::PhantomPredicateConstraint
        .run(IsolationLevel::SnapshotIsolation)
        .outcome
        .is_anomaly());
    assert!(weaker(
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::Serializable
    ));
    assert_eq!(
        compare(
            IsolationLevel::Serializable,
            IsolationLevel::SnapshotIsolation
        ),
        critique_core::lattice::Comparison::Stronger
    );
}
