//! Offline shim for `criterion`.
//!
//! crates.io is unreachable in this build environment, so this crate
//! provides a minimal benchmark harness with the API surface the workspace's
//! benches use: [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! with `bench_with_input` / `sample_size` / `finish`, [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — each benchmark is warmed up briefly,
//! then timed over enough iterations to fill a short measurement window, and
//! the mean time per iteration is printed.  No statistics, plots, or
//! baseline comparisons; the point is that `cargo bench` runs and reports
//! plausible numbers without the real dependency.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimiser from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measurement.
pub struct Bencher<'a> {
    report_label: &'a str,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher<'_> {
    /// Measure `routine`, printing mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let target = (self.measurement.as_secs_f64() / per_iter.max(1e-9)).clamp(1.0, 1e7);

        let iters = target as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        let mean = elapsed.as_secs_f64() / iters as f64;
        println!(
            "bench: {:<55} {:>14}/iter ({} iterations)",
            self.report_label,
            format_time(mean),
            iters
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} s", seconds)
    }
}

/// Top-level benchmark driver, handed to every target function.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(30),
            measurement: Duration::from_millis(120),
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut bencher = Bencher {
            report_label: id,
            warm_up: self.warm_up,
            measurement: self.measurement,
        };
        f(&mut bencher);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measurement = self.measurement;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            measurement,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    /// Group-scoped measurement window (real criterion scopes
    /// `measurement_time` to the group, so the shim does too).
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by wall-clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Shrink or stretch the timing window for this group only.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement = time;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchIdLike>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        let mut bencher = Bencher {
            report_label: &label,
            warm_up: self.criterion.warm_up,
            measurement: self.measurement,
        };
        f(&mut bencher);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        let mut bencher = Bencher {
            report_label: &label,
            warm_up: self.criterion.warm_up,
            measurement: self.measurement,
        };
        f(&mut bencher, input);
        self
    }

    /// End the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Something convertible into a benchmark label within a group.
pub struct BenchIdLike(String);

impl From<&str> for BenchIdLike {
    fn from(s: &str) -> Self {
        BenchIdLike(s.to_string())
    }
}

impl From<String> for BenchIdLike {
    fn from(s: String) -> Self {
        BenchIdLike(s)
    }
}

impl From<BenchmarkId> for BenchIdLike {
    fn from(id: BenchmarkId) -> Self {
        BenchIdLike(id.id)
    }
}

/// Collect benchmark target functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(2),
        };
        let mut runs = 0u64;
        c.bench_function("smoke/add", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_run_with_inputs() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(2),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, n| {
            b.iter(|| total += n)
        });
        group.finish();
        assert!(total > 0);
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert!(format_time(2e-9).ends_with("ns"));
        assert!(format_time(2e-6).ends_with("µs"));
        assert!(format_time(2e-3).ends_with("ms"));
        assert!(format_time(2.0).ends_with(" s"));
    }
}
