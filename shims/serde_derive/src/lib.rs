//! Offline shim for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal stand-in: the `Serialize` / `Deserialize` derives accept the
//! same attribute grammar but expand to nothing — the shim `serde` crate
//! blanket-implements its marker traits for every type.  Data-structure
//! serialisation in-tree (e.g. the harness report's JSON output) is
//! hand-rolled instead.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; the shim `serde::Serialize` is a blanket
/// marker trait, so nothing needs to be generated.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; see [`derive_serialize`].
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
