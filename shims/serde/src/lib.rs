//! Offline shim for `serde`.
//!
//! crates.io is unreachable in this build environment, so this crate stands
//! in for the real `serde`: [`Serialize`] and [`Deserialize`] are marker
//! traits blanket-implemented for every type, and the derive macros expand
//! to nothing.  This keeps the ~50 `#[derive(Serialize, Deserialize)]`
//! annotations across the workspace compiling as written; actual JSON
//! rendering in-tree is hand-rolled (see `critique-harness`'s report).
//!
//! When building with network access, point the workspace `serde` entry back
//! at the real crate — the annotations are already real-serde compatible.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; satisfied by every type.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
