//! Offline shim for `rand` (0.8-era API surface).
//!
//! crates.io is unreachable in this build environment, so this crate
//! provides the pieces the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen_bool, gen_range}` over
//! integer ranges.  The generator is xoshiro256**, seeded via SplitMix64 —
//! deterministic for a given seed, which is all the workloads need.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_range!(
    usize => usize,
    u64 => u64,
    u32 => u32,
    u16 => u16,
    i64 => u64,
    i32 => u32,
);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// A bool that is `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 random bits → uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniform sample from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as rand does for small seeds.
            let mut s = seed;
            let mut next = || {
                s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-20i64..20);
            assert!((-20..20).contains(&w));
            let x = rng.gen_range(1u32..=4);
            assert!((1..=4).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
