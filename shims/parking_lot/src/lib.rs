//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (guards come back without a `Result`, `Condvar::wait_for` takes the
//! guard by `&mut`).  Real `parking_lot` never poisons, so poisoned std
//! locks are recovered with [`PoisonError::into_inner`] — a panic that
//! unwinds past a guard (e.g. a surfaced invariant breach caught by
//! `catch_unwind` in a test) leaves the lock usable, exactly as the real
//! crate would.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual exclusion primitive; `lock` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard for [`Mutex`].
///
/// Internally holds an `Option` so [`Condvar::wait_for`] can temporarily
/// take ownership of the underlying std guard (std's `wait` consumes it).
pub struct MutexGuard<'a, T>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Default, Debug)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already taken");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard already taken");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    ///
    /// Real `parking_lot` reports whether a thread was actually woken;
    /// `std::sync::Condvar` cannot, so the shim deviates and returns `()` —
    /// a caller that needs the count will fail to compile rather than
    /// silently read a fabricated value.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    ///
    /// Returns `()` instead of real `parking_lot`'s woken-thread count;
    /// see [`Condvar::notify_one`].
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock; `read`/`write` return guards directly.
#[derive(Default, Debug)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T>(std::sync::RwLockReadGuard<'a, T>);

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        let result = cv.wait_for(&mut guard, Duration::from_millis(5));
        assert!(result.timed_out());
        // The guard is usable again after the wait.
        drop(guard);
        assert!(m.lock().0.is_some());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let waiter = std::thread::spawn(move || {
            let mut guard = m2.lock();
            while !*guard {
                cv2.wait_for(&mut guard, Duration::from_secs(5));
            }
            true
        });
        std::thread::sleep(Duration::from_millis(10));
        *m.lock() = true;
        cv.notify_all();
        assert!(waiter.join().unwrap());
    }
}
