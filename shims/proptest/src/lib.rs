//! Offline shim for `proptest`.
//!
//! crates.io is unreachable in this build environment, so this crate
//! provides a minimal property-testing harness with the API surface the
//! workspace's tests use: the [`strategy::Strategy`] trait with `prop_map`, integer
//! range / tuple / `Just` / bool strategies, `collection::vec`,
//! `sample::select`, the [`proptest!`] macro with `#![proptest_config]`,
//! and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest: generation is deterministic per test
//! name (no `PROPTEST_` env handling) and failing cases are *not* shrunk —
//! the panic message simply reports the failing case number.

#![forbid(unsafe_code)]

pub use crate::test_runner::Config as ProptestConfig;

/// Deterministic random generation for test cases.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// The generator behind every strategy: the workspace `rand` shim's
    /// xoshiro256**, seeded from the test name so each property is
    /// deterministic run-to-run.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// A generator seeded deterministically from `name`.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for byte in name.bytes() {
                seed ^= byte as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: rand::SeedableRng::seed_from_u64(seed),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            rand::RngCore::next_u64(&mut self.inner)
        }

        /// A uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            TestRng::next_u64(self)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Something that can generate values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of its payload.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    // Sampling itself lives in the `rand` shim's `SampleRange`; these impls
    // only adapt ranges to the `Strategy` trait.
    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::SampleRange::sample(self.clone(), rng)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::SampleRange::sample(self.clone(), rng)
                }
            }
        )*};
    }

    int_range_strategies!(usize, u64, u32, u16, i64, i32);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies!((A.0)(A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3));
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// A uniformly random boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A number-of-elements specification: a fixed count or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy yielding `Vec`s of values from an element strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy picking uniformly from a fixed set of options.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone>(Vec<T>);

    /// A uniform pick from `options` (which must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// Everything a property test needs, in one import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property; panics (reported with the failing case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Define property tests: each `name in strategy` argument is regenerated
/// for every case and the body re-run.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!((<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    let run = || {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        $body
                    };
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest shim: property `{}` failed at case {}/{}",
                            stringify!($name), case + 1, config.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1u32..=4, y in -20i64..20) {
            prop_assert!((1..=4).contains(&x));
            prop_assert!((-20..20).contains(&y));
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            items in prop::collection::vec((1u32..=4, prop::bool::ANY), 1..10),
        ) {
            prop_assert!(!items.is_empty() && items.len() < 10);
            for (n, _flag) in items {
                prop_assert!((1..=4).contains(&n));
            }
        }

        #[test]
        fn map_select_and_just(
            unit in Just(()),
            pick in prop::sample::select(vec![2usize, 4, 6]).prop_map(|n| n * 10),
        ) {
            let () = unit;
            prop_assert!(pick == 20 || pick == 40 || pick == 60);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        let strat = crate::collection::vec(0u32..100, 1..20);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
